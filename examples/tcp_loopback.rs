//! Train a Chimera pipeline over real loopback TCP sockets — the full wire
//! path (rendezvous, length-prefixed framing, reader threads) — and verify
//! the result bit-for-bit against the in-process channel fabric.
//!
//! Every rank runs [`train_worker_process`], the same entry point
//! `chimera-cli launch` drives in separate OS processes; here each rank
//! lives in a thread so one binary can show the whole exchange.
//!
//! ```sh
//! cargo run --release --example tcp_loopback -- [depth] [replicas] [iterations]
//! ```

use std::sync::Arc;

use chimera::comm::{TcpFabric, Transport};
use chimera::core::chimera::{chimera, ChimeraConfig};
use chimera::nn::ModelConfig;
use chimera::runtime::{train_hybrid, train_worker_process, TrainOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let d: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let w: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let iterations: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    assert!(d.is_multiple_of(2), "Chimera needs an even depth");

    let sched = chimera(&ChimeraConfig::new(d, d)).expect("valid schedule");
    let cfg = ModelConfig {
        layers: d as usize,
        hidden: 16,
        heads: 2,
        seq: 4,
        vocab: 29,
        causal: true,
        seed: 11,
    };
    let opts = TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 7,
        ..TrainOptions::default()
    };

    let per_group = sched.num_workers() as u32;
    let world = per_group * w;
    println!(
        "Launching {world} ranks over loopback TCP: Chimera D={d}, N={}, {w} replica group(s)\n",
        sched.n
    );

    // Every endpoint rendezvouses with rank 0, opens its mesh connections
    // lazily, and trains its stages; rank 0 additionally gathers losses and
    // parameters from the others over the same sockets.
    let endpoints = TcpFabric::loopback(world).expect("loopback fabric");
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let sched = sched.clone();
            let opts = opts.clone();
            std::thread::spawn(move || {
                train_worker_process(Arc::new(ep) as Arc<dyn Transport>, &sched, cfg, opts, w)
                    .expect("tcp worker trains")
            })
        })
        .collect();
    let mut outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let tcp = outcomes.remove(0).expect("rank 0 assembles the outcome");

    let losses: Vec<String> = tcp
        .iteration_losses
        .iter()
        .map(|l| format!("{l:.4}"))
        .collect();
    println!("TCP run     losses [{}]", losses.join(", "));

    // Same schedule, same options, in one process over channels.
    let local = train_hybrid(&sched, cfg, opts, w).expect("in-process training succeeds");
    let losses: Vec<String> = local
        .iteration_losses
        .iter()
        .map(|l| format!("{l:.4}"))
        .collect();
    println!("channel run losses [{}]", losses.join(", "));

    let tcp_bits: Vec<u32> = tcp.flat_params.iter().map(|f| f.to_bits()).collect();
    let local_bits: Vec<u32> = local.flat_params().iter().map(|f| f.to_bits()).collect();
    assert_eq!(tcp_bits, local_bits, "tcp fabric diverged from in-process");
    for (a, b) in tcp.iteration_losses.iter().zip(&local.iteration_losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "loss diverged");
    }
    println!(
        "\n✓ TCP run is bit-identical to the in-process run ({} parameters)",
        tcp.flat_params.len()
    );
}
