//! TCP backend: length-prefixed frames over `std::net` sockets.
//!
//! One fabric is built in three steps:
//!
//! 1. **Bind.** Every rank binds a data listener on an ephemeral port.
//! 2. **Rendezvous.** Rank 0 additionally binds the well-known coordinator
//!    address from [`TcpConfig::coordinator`] and serves a one-shot
//!    registration protocol: each rank connects, sends a `Ctrl` frame
//!    carrying its data-listener address, and — once all `world` ranks have
//!    registered — receives the full rank→address table back. Connecting to
//!    the coordinator retries with bounded backoff, so ranks may start in
//!    any order.
//! 3. **Mesh.** Data connections are opened lazily on first send to a peer
//!    (again with bounded-backoff retry). An acceptor thread on the data
//!    listener spawns one reader thread per inbound connection; readers
//!    decode frames and park payloads in the shared keyed inbox that
//!    [`Transport::recv_deadline`] polls.
//!
//! Wire traffic is counted into the `chimera-trace` metrics registry under
//! `comm.tcp.bytes_sent` / `comm.tcp.bytes_received` (whole frames,
//! including the 4-byte length prefix).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use chimera_trace::{Counter, MetricsRegistry};

use crate::fault::FaultInjection;
use crate::transport::{poll_deadline, CommError, MsgKey, Payload, Rank, Transport};
use crate::wire::{self, MAX_FRAME};

/// Control-plane tag: rank registration (payload: data-listener address).
const TAG_REGISTER: u32 = 0xC0;
/// Control-plane tag: full rank table (payload: newline-joined addresses).
const TAG_TABLE: u32 = 0xC1;

/// How one process joins a TCP fabric.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's rank (`0..world`), assigned by the launcher.
    pub rank: Rank,
    /// Total ranks in the fabric.
    pub world: u32,
    /// The rendezvous address: rank 0 binds it, everyone connects to it.
    pub coordinator: SocketAddr,
    /// Budget for the whole rendezvous phase (coordinator connect retry,
    /// registration, table wait).
    pub rendezvous_timeout: Duration,
    /// Budget for opening one lazy data connection to a peer.
    pub connect_timeout: Duration,
}

impl TcpConfig {
    /// A config with default timeouts (10 s rendezvous, 5 s connect).
    pub fn new(rank: Rank, world: u32, coordinator: SocketAddr) -> Self {
        TcpConfig {
            rank,
            world,
            coordinator,
            rendezvous_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// Builds TCP endpoints: [`TcpFabric::connect`] for one process of a real
/// multi-process job, [`TcpFabric::loopback`] for a whole fabric inside one
/// process (tests, benches).
pub struct TcpFabric;

impl TcpFabric {
    /// Join the fabric described by `config`: bind, rendezvous, return the
    /// connected endpoint. Blocks until every rank has registered or
    /// `config.rendezvous_timeout` expires.
    pub fn connect(config: TcpConfig) -> Result<TcpEndpoint, CommError> {
        TcpEndpoint::connect_with_listener(config, None)
    }

    /// Build all `world` endpoints of a fabric inside this process, over
    /// real loopback sockets — the full wire path (framing, rendezvous,
    /// reader threads) without spawning processes.
    pub fn loopback(world: u32) -> Result<Vec<TcpEndpoint>, CommError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| CommError::Rendezvous(format!("bind coordinator: {e}")))?;
        let coordinator = listener
            .local_addr()
            .map_err(|e| CommError::Rendezvous(format!("coordinator addr: {e}")))?;
        let mut pre_bound = Some(listener);
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = TcpConfig::new(rank, world, coordinator);
                let listener = if rank == 0 { pre_bound.take() } else { None };
                std::thread::spawn(move || TcpEndpoint::connect_with_listener(cfg, listener))
            })
            .collect();
        let mut endpoints = Vec::with_capacity(world as usize);
        for h in handles {
            endpoints.push(h.join().expect("rendezvous thread panicked")?);
        }
        endpoints.sort_by_key(|e| e.rank);
        Ok(endpoints)
    }
}

/// Inbox + counters shared between the owning worker and the backend's
/// reader threads.
struct Shared {
    inbox: Mutex<HashMap<MsgKey, VecDeque<Payload>>>,
    received: AtomicU64,
    metrics_received: Arc<Counter>,
    shutdown: AtomicBool,
}

/// One rank of a TCP fabric.
pub struct TcpEndpoint {
    rank: Rank,
    world: u32,
    /// Data-listener address of every rank, indexed by rank.
    peers: Vec<SocketAddr>,
    shared: Arc<Shared>,
    outbound: Mutex<HashMap<Rank, TcpStream>>,
    fault: Option<FaultInjection>,
    sent: AtomicU64,
    metrics_sent: Arc<Counter>,
    connect_timeout: Duration,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    fn connect_with_listener(
        config: TcpConfig,
        pre_bound: Option<TcpListener>,
    ) -> Result<TcpEndpoint, CommError> {
        assert!(config.rank < config.world, "rank out of range");
        let data_listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| CommError::Rendezvous(format!("bind data listener: {e}")))?;
        let data_addr = data_listener
            .local_addr()
            .map_err(|e| CommError::Rendezvous(format!("data listener addr: {e}")))?;

        // Rank 0 hosts the coordinator (and registers with it like everyone
        // else, over a real socket).
        let coordinator_thread = if config.rank == 0 {
            let listener = match pre_bound {
                Some(l) => l,
                None => TcpListener::bind(config.coordinator)
                    .map_err(|e| CommError::Rendezvous(format!("bind coordinator: {e}")))?,
            };
            let world = config.world;
            let deadline = config.rendezvous_timeout;
            Some(std::thread::spawn(move || {
                run_coordinator(listener, world, deadline)
            }))
        } else {
            None
        };

        let peers = rendezvous(&config, data_addr);
        if let Some(h) = coordinator_thread {
            match peers {
                Ok(_) => h
                    .join()
                    .map_err(|_| CommError::Rendezvous("coordinator panicked".into()))??,
                // Client failed: the coordinator has its own deadline and
                // will exit by itself; don't block on it.
                Err(_) => drop(h),
            }
        }
        let peers = peers?;

        let reg = MetricsRegistry::global();
        let shared = Arc::new(Shared {
            inbox: Mutex::new(HashMap::new()),
            received: AtomicU64::new(0),
            metrics_received: reg.counter("comm.tcp.bytes_received"),
            shutdown: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(data_listener, shared))
        };
        Ok(TcpEndpoint {
            rank: config.rank,
            world: config.world,
            peers,
            shared,
            outbound: Mutex::new(HashMap::new()),
            fault: None,
            sent: AtomicU64::new(0),
            metrics_sent: reg.counter("comm.tcp.bytes_sent"),
            connect_timeout: config.connect_timeout,
            acceptor: Some(acceptor),
        })
    }

    /// Arm send-path fault injection on this endpoint (before it is shared
    /// with its worker thread).
    pub fn install_fault(&mut self, fault: FaultInjection) {
        self.fault = Some(fault);
    }

    /// The data-listener address of `rank` (from the rendezvous table).
    pub fn peer_addr(&self, rank: Rank) -> Option<SocketAddr> {
        self.peers.get(rank as usize).copied()
    }

    fn take(&self, key: &MsgKey) -> Option<Payload> {
        let mut inbox = self.shared.inbox.lock();
        let q = inbox.get_mut(key)?;
        let payload = q.pop_front();
        if q.is_empty() {
            inbox.remove(key);
        }
        payload
    }
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn world(&self) -> u32 {
        self.world
    }

    fn send(&self, to: Rank, key: MsgKey, payload: Payload) -> Result<(), CommError> {
        if let Some(fault) = &self.fault {
            if fault.on_send(&key) {
                return Ok(());
            }
        }
        if to >= self.world {
            return Err(CommError::PeerGone { to });
        }
        let frame = wire::encode_frame(self.rank, &key, &payload);
        let mut outbound = self.outbound.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = outbound.entry(to) {
            let stream = connect_with_retry(self.peers[to as usize], self.connect_timeout)
                .map_err(|_| CommError::PeerGone { to })?;
            slot.insert(stream);
        }
        let ok = outbound
            .get_mut(&to)
            .expect("stream just ensured")
            .write_all(&frame)
            .is_ok();
        if !ok {
            outbound.remove(&to);
            return Err(CommError::PeerGone { to });
        }
        self.sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.metrics_sent.add(frame.len() as u64);
        Ok(())
    }

    fn recv_deadline(&self, key: MsgKey, timeout: Duration) -> Result<Payload, CommError> {
        if let Some(p) = self.take(&key) {
            return Ok(p);
        }
        poll_deadline(timeout, || self.take(&key)).ok_or(CommError::Timeout {
            key: key.describe(),
            waited: timeout,
        })
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    fn bytes_received(&self) -> u64 {
        self.shared.received.load(Ordering::Relaxed)
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Closing outbound streams unblocks peers' readers promptly.
        self.outbound.lock().clear();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Connect with bounded exponential backoff until `budget` is spent —
/// peers bring their listeners up in arbitrary order.
fn connect_with_retry(addr: SocketAddr, budget: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + budget;
    let mut backoff = Duration::from_millis(1);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
        }
    }
}

/// Rank 0's one-shot rendezvous service: collect `world` registrations,
/// then send every registrant the full table.
fn run_coordinator(listener: TcpListener, world: u32, timeout: Duration) -> Result<(), CommError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| CommError::Rendezvous(format!("coordinator nonblocking: {e}")))?;
    let deadline = Instant::now() + timeout;
    let mut addrs: Vec<Option<String>> = vec![None; world as usize];
    let mut streams: Vec<(Rank, TcpStream)> = Vec::with_capacity(world as usize);
    while streams.len() < world as usize {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| CommError::Rendezvous(format!("accept nonblocking: {e}")))?;
                let _ = stream.set_read_timeout(Some(timeout));
                let (_, key, payload) = read_frame_blocking(&mut stream)?;
                let MsgKey::Ctrl {
                    tag: TAG_REGISTER,
                    from,
                } = key
                else {
                    return Err(CommError::Rendezvous(format!(
                        "expected registration, got {}",
                        key.describe()
                    )));
                };
                let slot = addrs
                    .get_mut(from as usize)
                    .ok_or_else(|| CommError::Rendezvous(format!("rank {from} out of range")))?;
                if slot.is_some() {
                    return Err(CommError::Rendezvous(format!(
                        "rank {from} registered twice"
                    )));
                }
                let Payload::Bytes(b) = payload else {
                    return Err(CommError::Rendezvous(
                        "registration payload not bytes".into(),
                    ));
                };
                let addr = String::from_utf8(b)
                    .map_err(|_| CommError::Rendezvous("registration addr not utf8".into()))?;
                *slot = Some(addr);
                streams.push((from, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing: Vec<u32> = addrs
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.is_none())
                        .map(|(r, _)| r as u32)
                        .collect();
                    return Err(CommError::Rendezvous(format!(
                        "timed out waiting for ranks {missing:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(CommError::Rendezvous(format!("accept: {e}"))),
        }
    }
    let table: Vec<String> = addrs
        .into_iter()
        .map(|a| a.expect("all registered"))
        .collect();
    let payload = Payload::Bytes(table.join("\n").into_bytes());
    for (_, mut stream) in streams {
        write_frame(
            &mut stream,
            0,
            &MsgKey::Ctrl {
                tag: TAG_TABLE,
                from: 0,
            },
            &payload,
        )
        .map_err(|e| CommError::Rendezvous(format!("send table: {e}")))?;
    }
    Ok(())
}

/// Client side of the rendezvous: register `data_addr`, receive the table.
fn rendezvous(config: &TcpConfig, data_addr: SocketAddr) -> Result<Vec<SocketAddr>, CommError> {
    let mut stream = connect_with_retry(config.coordinator, config.rendezvous_timeout)
        .map_err(|e| CommError::Rendezvous(format!("connect coordinator: {e}")))?;
    let _ = stream.set_read_timeout(Some(config.rendezvous_timeout));
    write_frame(
        &mut stream,
        config.rank,
        &MsgKey::Ctrl {
            tag: TAG_REGISTER,
            from: config.rank,
        },
        &Payload::Bytes(data_addr.to_string().into_bytes()),
    )
    .map_err(|e| CommError::Rendezvous(format!("register: {e}")))?;
    let (_, key, payload) = read_frame_blocking(&mut stream)?;
    if !matches!(key, MsgKey::Ctrl { tag: TAG_TABLE, .. }) {
        return Err(CommError::Rendezvous(format!(
            "expected rank table, got {}",
            key.describe()
        )));
    }
    let Payload::Bytes(b) = payload else {
        return Err(CommError::Rendezvous("table payload not bytes".into()));
    };
    let text = String::from_utf8(b).map_err(|_| CommError::Rendezvous("table not utf8".into()))?;
    let peers: Vec<SocketAddr> = text
        .lines()
        .map(|l| {
            l.parse()
                .map_err(|_| CommError::Rendezvous(format!("bad peer addr {l:?}")))
        })
        .collect::<Result<_, _>>()?;
    if peers.len() != config.world as usize {
        return Err(CommError::Rendezvous(format!(
            "table has {} ranks, expected {}",
            peers.len(),
            config.world
        )));
    }
    Ok(peers)
}

fn write_frame(
    stream: &mut TcpStream,
    from: Rank,
    key: &MsgKey,
    payload: &Payload,
) -> std::io::Result<()> {
    stream.write_all(&wire::encode_frame(from, key, payload))
}

/// Blocking read of exactly one frame (control plane only; relies on the
/// stream's read timeout for deadlines).
fn read_frame_blocking(stream: &mut TcpStream) -> Result<(Rank, MsgKey, Payload), CommError> {
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| CommError::Rendezvous(format!("read frame header: {e}")))?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(CommError::Protocol(format!(
            "frame of {len} bytes exceeds cap"
        )));
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|e| CommError::Rendezvous(format!("read frame body: {e}")))?;
    wire::decode_body(&body)
}

/// Acceptor thread: poll the data listener, spawn one reader per inbound
/// connection, join readers on shutdown.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                readers.push(std::thread::spawn(move || reader_loop(stream, shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    for h in readers {
        let _ = h.join();
    }
}

/// Reader thread: accumulate bytes, decode complete frames, park payloads
/// in the keyed inbox. Short read timeouts keep the shutdown flag live
/// without ever splitting a frame (partial reads stay in the buffer).
fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    if buf.len() < 4 {
                        break;
                    }
                    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                    if len > MAX_FRAME {
                        // Corrupt stream: nothing downstream is trustworthy.
                        MetricsRegistry::global()
                            .counter("comm.tcp.protocol_errors")
                            .inc();
                        return;
                    }
                    if buf.len() < 4 + len {
                        break;
                    }
                    match wire::decode_body(&buf[4..4 + len]) {
                        Ok((_, key, payload)) => {
                            let frame_len = (4 + len) as u64;
                            shared.received.fetch_add(frame_len, Ordering::Relaxed);
                            shared.metrics_received.add(frame_len);
                            shared
                                .inbox
                                .lock()
                                .entry(key)
                                .or_default()
                                .push_back(payload);
                        }
                        Err(_) => {
                            MetricsRegistry::global()
                                .counter("comm.tcp.protocol_errors")
                                .inc();
                            return;
                        }
                    }
                    buf.drain(..4 + len);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_tensor::Tensor;

    fn act(micro: u64) -> MsgKey {
        MsgKey::Act {
            replica: 0,
            stage: 0,
            micro,
        }
    }

    #[test]
    fn loopback_fabric_moves_tensors_both_ways() {
        let eps = TcpFabric::loopback(2).expect("fabric");
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        eps[0].send(1, act(0), Payload::Tensor(t.clone())).unwrap();
        let got = eps[1]
            .recv_deadline(act(0), Duration::from_secs(5))
            .unwrap()
            .into_tensor();
        assert_eq!(got.data(), t.data());
        eps[1]
            .send(
                0,
                MsgKey::Ctrl { tag: 9, from: 1 },
                Payload::Flat(vec![5.0]),
            )
            .unwrap();
        let back = eps[0]
            .recv_deadline(MsgKey::Ctrl { tag: 9, from: 1 }, Duration::from_secs(5))
            .unwrap();
        assert_eq!(back.into_flat(), vec![5.0]);
        assert!(eps[0].bytes_sent() > 0);
    }

    #[test]
    fn wire_reordering_is_absorbed_by_keys() {
        let eps = TcpFabric::loopback(2).expect("fabric");
        for m in (0..8u64).rev() {
            eps[0]
                .send(1, act(m), Payload::Flat(vec![m as f32]))
                .unwrap();
        }
        for m in 0..8u64 {
            let v = eps[1]
                .recv_deadline(act(m), Duration::from_secs(5))
                .unwrap()
                .into_flat();
            assert_eq!(v, vec![m as f32]);
        }
        // Every frame sent was received, byte for byte.
        let deadline = Instant::now() + Duration::from_secs(5);
        while eps[1].bytes_received() < eps[0].bytes_sent() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(eps[1].bytes_received(), eps[0].bytes_sent());
    }

    #[test]
    fn recv_times_out_when_nothing_arrives() {
        let eps = TcpFabric::loopback(2).expect("fabric");
        let err = eps[1]
            .recv_deadline(act(42), Duration::from_millis(40))
            .unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }));
    }

    #[test]
    fn rendezvous_times_out_when_a_rank_never_shows() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let coordinator = listener.local_addr().unwrap();
        let mut cfg = TcpConfig::new(0, 2, coordinator);
        cfg.rendezvous_timeout = Duration::from_millis(200);
        // world=2 but rank 1 never starts.
        let err = match TcpEndpoint::connect_with_listener(cfg, Some(listener)) {
            Ok(_) => panic!("rendezvous unexpectedly succeeded"),
            Err(e) => e,
        };
        assert!(matches!(err, CommError::Rendezvous(_)), "got {err:?}");
    }
}
