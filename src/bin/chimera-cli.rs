//! `chimera-cli` — command-line front end for the Chimera reproduction.
//!
//! ```text
//! chimera-cli render  <scheme> [D] [N]            ASCII schedule + analytics
//! chimera-cli plan    <bert48|gpt2> [P] [B̂] [--json]  best (W,D,B) per scheme
//! chimera-cli serve   [--addr a] [--http-addr a]  planning-as-a-service daemon
//! chimera-cli query   [--addr a] --model m --devices P  query a running server
//! chimera-cli simulate <scheme> <bert48|gpt2> <P> <D> <B> <B̂>
//! chimera-cli train   [D] [N] [iters] [--trace f] real pipelined training
//! chimera-cli launch  --workers P [--transport tcp|local] [--d D] [--n N]
//!                     [--iters I] [--trace dir]   multi-process training
//!                     [--metrics-every ms] [--metrics-out f] [--metrics-port p]
//! chimera-cli verify  [scheme [D] [N]] [--liveness] [--json]  static schedule verifier
//! chimera-cli profile <trace.jsonl>... [--sim scheme D N] [--json]
//! chimera-cli overhead-check [D] [N] [iters] [--repeats R]
//! ```
//!
//! `profile` reconstructs per-rank timelines from one or more trace files
//! (pass every `trace-rank*.jsonl` of a launch together — they share one
//! time axis), attributes every rank's wall clock exclusively (compute,
//! comm waits, gradient sync, recovery, bubble), extracts the critical
//! path, and — with `--sim` — reports per-class drift against the
//! unit-cost simulation of the same configuration. When
//! `results/comm_overhead.json` exists, sized communication spans are also
//! checked against its α-β fits.
//!
//! `overhead-check` measures tracing overhead: best-of-R wall clock of the
//! same training run with tracing off and on, printed as JSON (used by CI
//! to enforce the <5% overhead budget).
//!
//! `verify` runs the static analyses of `chimera-verify` (happens-before
//! deadlock detection, send/recv matching, buffer-hazard and memory lints)
//! on one schedule, or — with no scheme — on every built-in scheme for
//! D ∈ {2, 4, 8}. `--liveness` adds the exact buffer-liveness dataflow
//! analysis under the Bert-48/Piz-Daint byte model: per-worker exact peak
//! memory, the coarse-bound cross-check, the memory-cliff op, and the pool
//! pre-sizing plan land in the report (schema `memory/v2` under `--json`).
//! Exit status 1 when any diagnostic of error severity is found.
//!
//! `launch` spawns `P` worker **processes** (one pipeline worker each, `W =
//! P/D` data-parallel groups) connected over the TCP transport, then re-runs
//! the identical configuration in-process and verifies the two parameter
//! sets are bit-identical. The hidden `worker` subcommand is what each
//! spawned process executes.
//!
//! `launch` is also a **supervisor**: workers write committed segment
//! checkpoints (`--ckpt-dir`/`--ckpt-every`), and when any worker process
//! dies — e.g. an injected `--kill-rank R --kill-iter I` crash, or a rank
//! that exits because the heartbeat failure detector declared a peer dead —
//! the supervisor kills the remaining ranks, picks a fresh rendezvous port,
//! and gang-restarts the job with `--resume`, which replays from the newest
//! segment **every** rank committed. Seeded network chaos
//! (`--chaos-seed/-flaky/-dup/-reorder/-partition/-break`) is forwarded to
//! every worker and healed below the transport by retransmit, receive-side
//! dedup and session-resuming reconnect, so the final parameters stay
//! bit-identical to the fault-free in-process run. Per-rank session
//! counters (reconnects, retransmits, duplicates dropped, chaos events)
//! land in `--stats-dir` and are aggregated into the printed `recoveries`
//! line.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use chimera::comm::{rendezvous_epoch, ClockSync};
use chimera::comm::{Liveness, NetChaos, TcpConfig, TcpFabric, Transport};
use chimera::core::analysis;
use chimera::core::chimera::{chimera as chimera_sched, ChimeraConfig, ScaleMethod};
use chimera::core::render;
use chimera::core::schedule::{Schedule, Scheme, SyncStrategy};
use chimera::core::sync::place_sync;
use chimera::core::unit_time::{execute, UnitCosts};
use chimera::nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera::obs::{
    drift_with_costs, load_comm_fits, profile, MetricsAggregator, MetricsPublisher, MetricsServer,
};
use chimera::perf::planner::{best, plan_chimera, PlanScheme};
use chimera::perf::{ClusterSpec, ModelSpec, TrainConfig};
use chimera::runtime::{
    train, train_hybrid, train_worker_process_recoverable, FaultSpec, RecoverySpec, TrainOptions,
};
use chimera::serve::{
    load_measured_floor, HttpServer, PlanClient, PlanEngine, PlanQuery, PlanServer, QueryLimits,
    RealSearcher, Searcher, ServeConfig,
};
use chimera::sim::simulate;
use chimera::trace::{now_ns, read_jsonl, write_jsonl, BufferSink, MetricsRegistry};
use chimera::verify::{verify_span, verify_with_memory, VerifyReport};

fn usage() -> ! {
    eprintln!(
        "usage:\n  chimera-cli render  <scheme> [D] [N]\n  chimera-cli plan    <bert48|gpt2> [P] [B_hat] [--json]\n  chimera-cli serve   [--addr a] [--http-addr a] [--workers n] [--queue-cap n]\n                      [--cache-cap n] [--no-floor]\n  chimera-cli query   [--addr a] [--model m --devices P] [--b-hat n] [--topology t]\n                      [--congestion-pct c] [--mem-budget-bytes b] [--schemes s,s]\n                      [--deadline-ms ms] [--stats] [--ping]\n  chimera-cli simulate <scheme> <bert48|gpt2> <P> <D> <B> <B_hat>\n  chimera-cli train   [D] [N] [iters] [--trace file.jsonl]\n  chimera-cli launch  --workers P [--transport tcp|local] [--d D] [--n N] [--iters I]\n                      [--trace dir] [--metrics-every ms] [--metrics-out file] [--metrics-port p]\n                      [--ckpt-dir dir] [--ckpt-every k] [--max-respawns r] [--stats-dir dir]\n                      [--kill-rank R --kill-iter I]\n                      [--chaos-seed s] [--chaos-flaky p] [--chaos-dup p] [--chaos-reorder p]\n                      [--chaos-partition start:len] [--chaos-break frame]\n  chimera-cli verify  [scheme [D] [N]] [--liveness] [--json]\n  chimera-cli profile <trace.jsonl>... [--sim scheme D N] [--calibration kernels.json] [--json]\n  chimera-cli overhead-check [D] [N] [iters] [--repeats R]\n\nschemes: chimera | chimera-f2 | doubling | halving | dapple | gpipe | gems |\n         pipedream | pipedream-2bw"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: Option<String>, default: T) -> T {
    s.and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_schedule(scheme: &str, d: u32, n: u32) -> Schedule {
    chimera::core::build_named(scheme, d, n).unwrap_or_else(|| usage())
}

fn model_spec(name: &str) -> ModelSpec {
    match name {
        "bert48" => ModelSpec::bert48(),
        "gpt2" => ModelSpec::gpt2(),
        "gpt2-32" => ModelSpec::gpt2_32(),
        _ => usage(),
    }
}

fn cmd_render(mut args: std::env::Args) {
    let scheme = args.next().unwrap_or_else(|| usage());
    let d = parse(args.next(), 4u32);
    let n = parse(args.next(), d);
    let sched = build_schedule(&scheme, d, n);
    let tl = execute(&sched, UnitCosts::practical()).expect("executes");
    println!("{scheme} D={d} N={n} (backward = 2x forward):\n");
    println!("{}", render::render(&tl));
    println!("{}", render::summary(&tl));
    if matches!(
        sched.scheme,
        Scheme::Chimera | Scheme::Dapple | Scheme::GPipe | Scheme::Gems
    ) {
        let a = analysis::table2(sched.scheme, d, n);
        println!(
            "Table-2 analytics: bubble {:.3}, weights {:?} Mθ, activations {:?} Ma",
            a.bubble_ratio, a.weights_memory, a.activations_memory
        );
    }
}

fn cmd_plan(args: std::env::Args) {
    let mut rest: Vec<String> = args.collect();
    let json = if let Some(pos) = rest.iter().position(|a| a == "--json") {
        rest.remove(pos);
        true
    } else {
        false
    };
    let mut rest = rest.into_iter();
    let model_name = rest.next().unwrap_or_else(|| usage());
    let p = parse(rest.next(), 32u32);
    let b_hat = parse(rest.next(), 512u64);
    if json {
        // Same serializer as the planning service: `plan --json` output is
        // byte-compatible with a `chimera-serve` plan response.
        let raw = serde_json::json!({"model": model_name, "devices": p, "b_hat": b_hat});
        let q = match PlanQuery::parse(&raw, &QueryLimits::default()) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("chimera-cli plan: {e}");
                std::process::exit(2);
            }
        };
        match RealSearcher::default().search(&q, None) {
            Ok(v) => println!(
                "{}",
                serde_json::to_string_pretty(&v).unwrap_or_else(|_| v.to_string())
            ),
            Err(e) => {
                eprintln!("chimera-cli plan: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let model = model_spec(&model_name);
    let cluster = ClusterSpec::piz_daint();
    println!("{} on P={p} (Piz Daint profile), B̂={b_hat}:\n", model.name);
    println!(
        "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12} {:>8}",
        "scheme", "W", "D", "B", "N", "rec", "samples/s", "peakGiB"
    );
    let print_cand = |label: String, c: Option<chimera::perf::Candidate>| match c {
        Some(c) => println!(
            "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12.1} {:>8.2}",
            label,
            c.w,
            c.d,
            c.b,
            c.n,
            if c.recompute { "R" } else { "-" },
            c.throughput,
            c.peak_mem as f64 / (1u64 << 30) as f64
        ),
        None => println!("{label:<24} (no feasible configuration)"),
    };
    for scheme in [
        PlanScheme::GPipe,
        PlanScheme::Dapple,
        PlanScheme::Gems,
        PlanScheme::PipeDream,
        PlanScheme::PipeDream2Bw,
    ] {
        print_cand(scheme.label(), best(scheme, model, cluster, p, b_hat));
    }
    for scale in [
        ScaleMethod::Direct,
        ScaleMethod::ForwardDoubling { recompute: true },
        ScaleMethod::BackwardHalving,
    ] {
        let c = plan_chimera(1, scale, model, cluster, p, b_hat);
        let label = c
            .as_ref()
            .map(|c| c.scheme.label())
            .unwrap_or_else(|| "Chimera".into());
        print_cand(label, c);
    }
}

fn cmd_serve(args: std::env::Args) {
    let mut addr: SocketAddr = "127.0.0.1:7070".parse().unwrap();
    let mut http_addr: Option<SocketAddr> = None;
    let mut cfg = ServeConfig::default();
    let mut floor_path = Some("results/comm_overhead.json".to_string());
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = parse(args.next(), addr),
            "--http-addr" => {
                http_addr = args.next().and_then(|s| s.parse().ok());
                if http_addr.is_none() {
                    usage();
                }
            }
            "--workers" => cfg.workers = parse(args.next(), cfg.workers),
            "--queue-cap" => cfg.queue_cap = parse(args.next(), cfg.queue_cap),
            "--cache-cap" => cfg.cache_cap = parse(args.next(), cfg.cache_cap),
            "--no-floor" => floor_path = None,
            _ => usage(),
        }
    }
    let measured_floor = floor_path.as_deref().and_then(load_measured_floor);
    match measured_floor {
        Some((a, b)) => println!(
            "chimera-serve: measured inter-node floor α={:.1}µs β={b:.3e} s/B (from {})",
            a * 1e6,
            floor_path.unwrap()
        ),
        None => println!("chimera-serve: no measured floor; topology presets stand as-is"),
    }
    let engine = PlanEngine::start(cfg, Box::new(RealSearcher { measured_floor }));
    let server = PlanServer::bind(addr, engine.clone()).unwrap_or_else(|e| {
        eprintln!("chimera-serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("chimera-serve: framed protocol on {}", server.addr);
    let _http = http_addr.map(|a| {
        let s = HttpServer::serve(a, engine.clone()).unwrap_or_else(|e| {
            eprintln!("chimera-serve: cannot bind HTTP {a}: {e}");
            std::process::exit(1);
        });
        println!("chimera-serve: http on {}", s.addr);
        s
    });
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_query(args: std::env::Args) {
    let mut addr: SocketAddr = "127.0.0.1:7070".parse().unwrap();
    let mut q = serde_json::json!({});
    let obj = q.as_object_mut().unwrap();
    let mut op: Option<&str> = None;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut set = |key: &str, v: serde_json::Value| {
            obj.insert(key.to_string(), v);
        };
        match flag.as_str() {
            "--addr" => addr = parse(args.next(), addr),
            "--stats" => op = Some("stats"),
            "--ping" => op = Some("ping"),
            "--model" => set("model", serde_json::json!(args.next().unwrap_or_default())),
            "--devices" => set("devices", serde_json::json!(parse(args.next(), 0u32))),
            "--b-hat" => set("b_hat", serde_json::json!(parse(args.next(), 0u64))),
            "--topology" => set(
                "topology",
                serde_json::json!(args.next().unwrap_or_default()),
            ),
            "--congestion-pct" => {
                set(
                    "congestion_pct",
                    serde_json::json!(parse(args.next(), 0u32)),
                );
            }
            "--mem-budget-bytes" => {
                set(
                    "mem_budget_bytes",
                    serde_json::json!(parse(args.next(), 0u64)),
                );
            }
            "--schemes" => set(
                "schemes",
                serde_json::json!(args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()),
            ),
            "--deadline-ms" => set("deadline_ms", serde_json::json!(parse(args.next(), 0u64))),
            _ => usage(),
        }
    }
    if let Some(op) = op {
        q = serde_json::json!({"op": op});
    }
    let mut client = PlanClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("chimera-cli query: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    match client.query(q) {
        Ok(v) => {
            let ok = v["ok"].as_bool().unwrap_or(false);
            println!(
                "{}",
                serde_json::to_string_pretty(&v).unwrap_or_else(|_| v.to_string())
            );
            if !ok {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("chimera-cli query: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_simulate(mut args: std::env::Args) {
    let scheme = args.next().unwrap_or_else(|| usage());
    let model = model_spec(&args.next().unwrap_or_else(|| usage()));
    let p = parse(args.next(), 32u32);
    let d = parse(args.next(), 4u32);
    let b = parse(args.next(), 4u32);
    let b_hat = parse(args.next(), 512u64);
    let w = p / d;
    let n = (b_hat / (w as u64 * b as u64)).max(1) as u32;
    let base = build_schedule(&scheme, d, n);
    let replicas = base.placement.replicas();
    let sched = if base.flushes {
        place_sync(base, SyncStrategy::EagerOpt, UnitCosts::practical())
    } else {
        base
    };
    let cluster = ClusterSpec::piz_daint();
    let cost = TrainConfig {
        model,
        cluster,
        d,
        w,
        b,
        stage_replicas: replicas,
    }
    .cost_model();
    let rep = simulate(&sched, &cost).expect("simulates");
    println!(
        "{scheme} {} P={p} (W={w} D={d} B={b} N={n}):\n  iteration {:.4}s | {:.1} samples/s | bubble {:.3} | peak {:.2} GiB{}",
        model.name,
        rep.iter_time_s,
        rep.throughput(b_hat),
        rep.bubble_ratio,
        rep.max_peak_mem() as f64 / (1u64 << 30) as f64,
        if rep.fits(cluster.usable_mem()) { "" } else { "  [OOM]" }
    );
}

fn cmd_train(args: std::env::Args) {
    let mut positional = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                trace_path = it.next();
                if trace_path.is_none() {
                    eprintln!("--trace needs a path");
                    usage();
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unexpected flag: {other}");
                usage();
            }
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let d = parse(positional.next(), 4u32);
    let n = parse(positional.next(), d);
    let iterations = parse(positional.next(), 8u32);
    let cfg = ModelConfig {
        layers: d as usize,
        ..ModelConfig::tiny()
    };
    let sink = trace_path.as_ref().map(|_| Arc::new(BufferSink::new()));
    let opts = TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 7,
        trace: sink.clone().map(|s| s as _),
        ..TrainOptions::default()
    };
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let result = train(&sched, cfg, opts.clone()).expect("training succeeds");
    if let (Some(path), Some(sink)) = (&trace_path, &sink) {
        let events = sink.drain();
        write_jsonl(path, &events).expect("write trace file");
        println!("trace: {} events -> {path}", events.len());
    }
    println!("Chimera D={d} N={n}, {iterations} iterations on {d} threads:");
    for (i, l) in result.iteration_losses.iter().enumerate() {
        println!("  iter {i:>3}: loss {l:.4}");
    }
    // Cross-check the last state against sequential SGD.
    let mut r = ReferenceTrainer::new(
        Stage::build_all(cfg, d),
        SyntheticData::new(cfg, opts.data_seed),
        opts.micro_batch,
        opts.lr,
        opts.momentum,
    );
    for it in 0..iterations {
        r.train_iteration(it as u64 * n as u64, n);
    }
    assert_eq!(result.flat_params(), r.flat_params());
    println!("✓ bit-identical to sequential mini-batch SGD");
}

/// Schemes swept by `verify` when no scheme is given. `chimera-f2` needs
/// `2 | D/2` and is skipped where that fails.
const VERIFY_SCHEMES: [&str; 9] = [
    "gpipe",
    "dapple",
    "gems",
    "pipedream",
    "pipedream-2bw",
    "chimera",
    "chimera-f2",
    "doubling",
    "halving",
];

/// Span iteration count matching what `build_schedule` generates: the
/// steady-state PipeDream schedules cover two iterations back to back.
fn verify_iterations(scheme: &str) -> u32 {
    if scheme.starts_with("pipedream") {
        2
    } else {
        1
    }
}

fn cmd_verify(args: std::env::Args) {
    let mut positional = Vec::new();
    let mut json = false;
    let mut liveness = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--liveness" => liveness = true,
            other if other.starts_with("--") => {
                eprintln!("unexpected flag: {other}");
                usage();
            }
            _ => positional.push(a),
        }
    }

    // `--liveness` prices the schedule with the Bert-48 byte model on the
    // Piz-Daint cluster spec — the same reference configuration the planner
    // and paper figures use — and checks the exact peak against its memory.
    let run_one = |sched: &Schedule, scheme: &str| -> VerifyReport {
        let iters = verify_iterations(scheme);
        if !liveness {
            return verify_span(sched, iters);
        }
        let cluster = ClusterSpec::piz_daint();
        let cfg = TrainConfig {
            model: ModelSpec::bert48(),
            cluster,
            d: sched.d,
            w: 1,
            b: 1,
            stage_replicas: sched.placement.replicas(),
        };
        verify_with_memory(sched, iters, &cfg.cost_model(), cluster.usable_mem())
    };

    let mut reports = Vec::new();
    match positional.first() {
        Some(scheme) => {
            let d = parse(positional.get(1).cloned(), 4u32);
            let n = parse(positional.get(2).cloned(), 2 * d);
            let sched = build_schedule(scheme, d, n);
            reports.push(run_one(&sched, scheme));
        }
        None => {
            for d in [2u32, 4, 8] {
                for scheme in VERIFY_SCHEMES {
                    if scheme == "chimera-f2" && (d / 2) % 2 != 0 {
                        continue;
                    }
                    let sched = build_schedule(scheme, d, 2 * d);
                    reports.push(run_one(&sched, scheme));
                }
            }
        }
    }

    let clean = reports.iter().all(chimera::verify::VerifyReport::is_clean);
    if json {
        let bodies: Vec<String> = reports
            .iter()
            .map(chimera::verify::VerifyReport::to_json)
            .collect();
        println!("[{}]", bodies.join(",\n"));
    } else {
        for r in &reports {
            println!("{r}");
        }
        println!(
            "{} schedule(s) verified: {}",
            reports.len(),
            if clean { "all clean" } else { "ERRORS FOUND" }
        );
    }
    if !clean {
        std::process::exit(1);
    }
}

/// `--flag value` pairs for the launch/worker subcommands.
fn parse_flags(args: std::env::Args) -> std::collections::HashMap<String, String> {
    let mut flags = std::collections::HashMap::new();
    let mut it = args.peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("unexpected argument: {flag}");
            usage();
        };
        let Some(value) = it.next() else {
            eprintln!("--{name} needs a value");
            usage();
        };
        flags.insert(name.to_string(), value);
    }
    flags
}

fn flag<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: T,
) -> T {
    match flags.get(name) {
        Some(v) => v.parse().ok().unwrap_or_else(|| {
            eprintln!("bad value for --{name}");
            usage()
        }),
        None => default,
    }
}

/// The `--chaos-*` flags `launch` forwards verbatim to every worker.
const CHAOS_FLAGS: [&str; 6] = [
    "chaos-seed",
    "chaos-flaky",
    "chaos-dup",
    "chaos-reorder",
    "chaos-partition",
    "chaos-break",
];

/// Build the seeded network-chaos plan described by the `--chaos-*` flags.
/// With none present the plan is empty and `install_chaos` ignores it.
fn chaos_from_flags(flags: &std::collections::HashMap<String, String>) -> NetChaos {
    let mut plan = NetChaos::new(flag(flags, "chaos-seed", 1u64))
        .with_flaky(flag(flags, "chaos-flaky", 0.0))
        .with_duplicate(flag(flags, "chaos-dup", 0.0))
        .with_reorder(flag(flags, "chaos-reorder", 0.0));
    if let Some(win) = flags.get("chaos-partition") {
        let parsed = win
            .split_once(':')
            .and_then(|(s, l)| Some((s.parse().ok()?, l.parse().ok()?)));
        let Some((start, len)) = parsed else {
            eprintln!("--chaos-partition wants start:len (frame indices)");
            usage();
        };
        plan = plan.with_partition(start, len);
    }
    if flags.contains_key("chaos-break") {
        plan = plan.with_break_at(flag(flags, "chaos-break", 0u64));
    }
    plan
}

/// The fixed hyper-parameters `launch`/`worker` share — every process must
/// build the identical run for the bit-identity check to be meaningful.
fn launch_opts(iterations: u32) -> TrainOptions {
    TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 7,
        ..TrainOptions::default()
    }
}

fn launch_model(d: u32) -> ModelConfig {
    ModelConfig {
        layers: d as usize,
        ..ModelConfig::tiny()
    }
}

fn write_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_f32s(bytes: &[u8], pos: &mut usize) -> Vec<f32> {
    let n = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap()) as usize;
    *pos += 4;
    let vals = bytes[*pos..*pos + n * 4]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    *pos += n * 4;
    vals
}

/// Spawn `P` worker processes over TCP, then verify the distributed result
/// is bit-identical to the in-process run of the same configuration.
fn cmd_launch(args: std::env::Args) {
    let flags = parse_flags(args);
    let workers: u32 = flag(&flags, "workers", 4);
    let d: u32 = flag(&flags, "d", workers);
    let n: u32 = flag(&flags, "n", d);
    let iterations: u32 = flag(&flags, "iters", 4);
    let transport = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("tcp")
        .to_string();
    if workers == 0 || d == 0 || !workers.is_multiple_of(d) {
        eprintln!("--workers must be a positive multiple of --d (P = W·D)");
        std::process::exit(2);
    }
    let w = workers / d;
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let cfg = launch_model(d);
    let opts = launch_opts(iterations);
    let trace_dir = flags.get("trace").cloned();
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }

    let (dist_losses, dist_params) = match transport.as_str() {
        "local" => {
            let fault_flags = ["kill-rank", "kill-iter", "ckpt-dir", "stats-dir"];
            if fault_flags.iter().any(|f| flags.contains_key(*f))
                || CHAOS_FLAGS.iter().any(|f| flags.contains_key(*f))
            {
                eprintln!("fault-tolerance flags need --transport tcp");
                std::process::exit(2);
            }
            // One process, thread-per-worker over the in-process fabric —
            // the baseline the TCP path is checked against. All threads
            // share one trace clock, so no epoch rendezvous is needed.
            let sink = trace_dir.as_ref().map(|_| Arc::new(BufferSink::new()));
            let mut local_opts = opts.clone();
            local_opts.trace = sink.clone().map(|s| s as _);
            let result =
                train_hybrid(&sched, cfg, local_opts, w).expect("in-process training succeeds");
            if let (Some(dir), Some(sink)) = (&trace_dir, &sink) {
                let path = format!("{dir}/trace.jsonl");
                let events = sink.drain();
                write_jsonl(&path, &events).expect("write trace file");
                println!("trace: {} events -> {path}", events.len());
            }
            if let Some(path) = flags.get("metrics-out") {
                // Single process: the "merged" view is just this process's
                // registry under rank 0.
                let snap = MetricsRegistry::global().snapshot();
                let totals = snap["counters"].clone();
                let merged = serde_json::json!({
                    "schema": "chimera-obs/metrics/v1",
                    "world": 1,
                    "ranks": {"0": snap},
                    "totals": totals,
                });
                std::fs::write(path, merged.to_string()).expect("write metrics file");
                println!("metrics -> {path}");
            }
            (result.iteration_losses.clone(), result.flat_params())
        }
        "tcp" => {
            let exe = std::env::current_exe().expect("own executable path");
            let out_path =
                std::env::temp_dir().join(format!("chimera-launch-{}.bin", std::process::id()));

            // Fault-tolerance configuration. A requested kill (or an explicit
            // --ckpt-dir) turns on segment checkpointing so the gang restart
            // has a committed state to resume from; the checkpoint and stats
            // directories default to per-launch temp dirs.
            let kill_requested = flags.contains_key("kill-rank") || flags.contains_key("kill-iter");
            if flags.contains_key("kill-rank") != flags.contains_key("kill-iter") {
                eprintln!("--kill-rank and --kill-iter go together");
                std::process::exit(2);
            }
            let ckpt_dir_tmp = kill_requested && !flags.contains_key("ckpt-dir");
            let ckpt_dir = flags.get("ckpt-dir").cloned().or_else(|| {
                kill_requested.then(|| {
                    std::env::temp_dir()
                        .join(format!("chimera-ckpt-{}", std::process::id()))
                        .display()
                        .to_string()
                })
            });
            let ckpt_every: u32 = flag(&flags, "ckpt-every", 1);
            let max_respawns: u32 = flag(&flags, "max-respawns", 3);
            if let Some(dir) = &ckpt_dir {
                std::fs::create_dir_all(dir).expect("create checkpoint directory");
            }
            let stats_dir_tmp = !flags.contains_key("stats-dir");
            let stats_dir = flags.get("stats-dir").cloned().unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("chimera-stats-{}", std::process::id()))
                    .display()
                    .to_string()
            });
            std::fs::create_dir_all(&stats_dir).expect("create stats directory");

            // A free rendezvous port: bind ephemeral, remember, release.
            // Rank 0 rebinds it immediately, so reuse races are negligible.
            // Every gang restart picks a fresh one — the old port lingers
            // in TIME_WAIT.
            let fresh_coordinator = || -> SocketAddr {
                let l = TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral port");
                l.local_addr().expect("local addr")
            };
            let spawn_all = |coordinator: SocketAddr,
                             resume: bool,
                             arm_kill: bool|
             -> Vec<std::process::Child> {
                (0..workers)
                    .map(|rank| {
                        let mut cmd = std::process::Command::new(&exe);
                        cmd.arg("worker")
                            .args(["--rank", &rank.to_string()])
                            .args(["--workers", &workers.to_string()])
                            .args(["--d", &d.to_string()])
                            .args(["--n", &n.to_string()])
                            .args(["--iters", &iterations.to_string()])
                            .args(["--coordinator", &coordinator.to_string()])
                            .args(["--stats", &format!("{stats_dir}/stats-rank{rank}.json")]);
                        if rank == 0 {
                            cmd.args(["--out", &out_path.display().to_string()]);
                        }
                        if let Some(dir) = &ckpt_dir {
                            cmd.args(["--ckpt-dir", dir])
                                .args(["--ckpt-every", &ckpt_every.to_string()]);
                        }
                        if resume {
                            cmd.args(["--resume", "1"]);
                        }
                        if arm_kill {
                            if let (Some(r), Some(i)) =
                                (flags.get("kill-rank"), flags.get("kill-iter"))
                            {
                                cmd.args(["--kill-rank", r]).args(["--kill-iter", i]);
                            }
                        }
                        for f in CHAOS_FLAGS {
                            if let Some(v) = flags.get(f) {
                                cmd.args([&format!("--{f}"), v]);
                            }
                        }
                        if let Some(dir) = &trace_dir {
                            cmd.args(["--trace", &format!("{dir}/trace-rank{rank}.jsonl")]);
                        }
                        if let Some(every) = flags.get("metrics-every") {
                            cmd.args(["--metrics-every", every]);
                            if rank == 0 {
                                if let Some(out) = flags.get("metrics-out") {
                                    cmd.args(["--metrics-out", out]);
                                }
                                if let Some(port) = flags.get("metrics-port") {
                                    cmd.args(["--metrics-port", port]);
                                }
                            }
                        }
                        cmd.spawn().expect("spawn worker process")
                    })
                    .collect()
            };

            // Supervisor loop: poll the gang; on any non-zero exit (a killed
            // rank, or a rank that exited because the failure detector
            // declared a peer dead), kill the survivors and gang-restart
            // from the newest committed segment. The kill fault is armed
            // only on the first incarnation so it cannot re-fire on replay.
            let mut respawns = 0u32;
            let mut children = spawn_all(fresh_coordinator(), false, true);
            loop {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let mut dead: Option<(usize, std::process::ExitStatus)> = None;
                let mut running = 0u32;
                for (rank, child) in children.iter_mut().enumerate() {
                    match child.try_wait().expect("poll worker") {
                        Some(status) if !status.success() => {
                            dead = Some((rank, status));
                            break;
                        }
                        Some(_) => {}
                        None => running += 1,
                    }
                }
                if let Some((rank, status)) = dead {
                    eprintln!("supervisor: rank {rank} died ({status}); gang-restarting");
                    for child in &mut children {
                        let _ = child.kill();
                    }
                    for child in &mut children {
                        let _ = child.wait();
                    }
                    respawns += 1;
                    if respawns > max_respawns {
                        eprintln!("supervisor: gave up after {max_respawns} respawns");
                        std::process::exit(1);
                    }
                    if ckpt_dir.is_none() {
                        eprintln!("supervisor: no --ckpt-dir, restarting from scratch");
                    }
                    children = spawn_all(fresh_coordinator(), ckpt_dir.is_some(), false);
                    continue;
                }
                if running == 0 {
                    break;
                }
            }

            let bytes = std::fs::read(&out_path).expect("rank 0 result file");
            let _ = std::fs::remove_file(&out_path);
            if let Some(dir) = &trace_dir {
                println!("trace: per-rank files in {dir}/trace-rank*.jsonl (shared time axis)");
            }

            // Aggregate the per-rank session counters into one recovery line.
            let mut total = [0u64; 4]; // reconnects, retransmits, dup_dropped, chaos_events
            for rank in 0..workers {
                let path = format!("{stats_dir}/stats-rank{rank}.json");
                let Ok(body) = std::fs::read_to_string(&path) else {
                    continue;
                };
                if let Ok(v) = serde_json::from_str(&body) {
                    for (slot, field) in
                        ["reconnects", "retransmits", "dup_dropped", "chaos_events"]
                            .iter()
                            .enumerate()
                    {
                        total[slot] += v
                            .get(field)
                            .and_then(serde_json::Value::as_u64)
                            .unwrap_or(0);
                    }
                }
            }
            let recoveries = respawns as u64 + total[0];
            println!(
                "recoveries: {recoveries} (respawns {respawns}, reconnects {}, retransmits {}, \
                 dup_dropped {}, chaos_events {})",
                total[0], total[1], total[2], total[3]
            );
            if kill_requested && respawns == 0 {
                eprintln!("✗ --kill-rank was requested but no worker died");
                std::process::exit(1);
            }
            if ckpt_dir_tmp {
                if let Some(dir) = &ckpt_dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            if stats_dir_tmp {
                let _ = std::fs::remove_dir_all(&stats_dir);
            }

            let mut pos = 0;
            let losses = read_f32s(&bytes, &mut pos);
            let params = read_f32s(&bytes, &mut pos);
            (losses, params)
        }
        other => {
            eprintln!("unknown transport {other:?} (use tcp or local)");
            std::process::exit(2);
        }
    };

    println!("chimera launch: {workers} {transport} workers (W={w} D={d} N={n}), {iterations} iterations:");
    for (i, l) in dist_losses.iter().enumerate() {
        println!("  iter {i:>3}: loss {l:.4}");
    }

    // Re-run the identical configuration in-process and demand bitwise
    // agreement.
    let reference = train_hybrid(&sched, cfg, opts, w).expect("in-process training succeeds");
    let ref_params = reference.flat_params();
    let params_match = dist_params.len() == ref_params.len()
        && dist_params
            .iter()
            .zip(&ref_params)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let losses_match = dist_losses.len() == reference.iteration_losses.len()
        && dist_losses
            .iter()
            .zip(&reference.iteration_losses)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !params_match || !losses_match {
        eprintln!(
            "✗ {transport} run diverged from the in-process run (params match: \
             {params_match}, losses match: {losses_match})"
        );
        std::process::exit(1);
    }
    println!(
        "✓ bit-identical to the in-process run ({} parameters)",
        ref_params.len()
    );
}

/// One spawned worker process (hidden subcommand used by `launch`).
fn cmd_worker(args: std::env::Args) {
    let flags = parse_flags(args);
    let rank: u32 = flag(&flags, "rank", 0);
    let workers: u32 = flag(&flags, "workers", 1);
    let d: u32 = flag(&flags, "d", workers);
    let n: u32 = flag(&flags, "n", d);
    let iterations: u32 = flag(&flags, "iters", 4);
    let coordinator: SocketAddr = match flags.get("coordinator").map(|s| s.parse()) {
        Some(Ok(a)) => a,
        _ => {
            eprintln!("worker needs --coordinator <addr>");
            std::process::exit(2);
        }
    };
    let w = workers / d;
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let mut tcp_ep = match TcpFabric::connect(TcpConfig::new(rank, workers, coordinator)) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("rank {rank}: joining fabric failed: {e}");
            std::process::exit(1);
        }
    };
    // Arm the seeded chaos plan before the endpoint is shared; an empty
    // plan (no --chaos-* flags) is ignored.
    tcp_ep.install_chaos(chaos_from_flags(&flags));
    let tcp_ep = Arc::new(tcp_ep);
    let ep = tcp_ep.clone() as Arc<dyn Transport>;
    // Failure-detector watchdog: when the heartbeat detector declares a
    // previously-heard peer dead, exit with a distinctive status instead of
    // blocking until the recv deadline — the supervisor reads any non-zero
    // exit as "gang-restart now". Disarmed once training finishes, so ranks
    // draining final results at slightly different times don't misfire.
    let training_done = Arc::new(AtomicBool::new(false));
    {
        let done = training_done.clone();
        let tep = tcp_ep.clone();
        std::thread::spawn(move || loop {
            if done.load(Ordering::Relaxed) {
                return;
            }
            for peer in 0..workers {
                if peer != rank && tep.liveness(peer) == Liveness::Dead {
                    eprintln!("rank {rank}: failure detector declared rank {peer} dead");
                    std::process::exit(17);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    // Live metrics: non-zero ranks publish registry snapshots to rank 0
    // over the fabric; rank 0 aggregates, optionally serves them over
    // HTTP during the run, and writes the final merged view at exit.
    let metrics_every_ms: u64 = flag(&flags, "metrics-every", 0u64);
    let mut publisher = None;
    let mut aggregator: Option<Arc<MetricsAggregator>> = None;
    let mut server = None;
    if metrics_every_ms > 0 {
        if rank == 0 {
            let agg = Arc::new(MetricsAggregator::spawn(
                ep.clone(),
                MetricsRegistry::global(),
            ));
            if let Some(port) = flags.get("metrics-port") {
                let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap_or_else(|_| {
                    eprintln!("bad value for --metrics-port");
                    std::process::exit(2);
                });
                let agg2 = agg.clone();
                match MetricsServer::serve(addr, move || agg2.merged()) {
                    Ok(s) => {
                        eprintln!("rank 0: serving metrics on http://{}", s.addr);
                        server = Some(s);
                    }
                    Err(e) => eprintln!("rank 0: metrics server bind failed: {e}"),
                }
            }
            aggregator = Some(agg);
        } else {
            publisher = Some(MetricsPublisher::spawn(
                ep.clone(),
                MetricsRegistry::global(),
                std::time::Duration::from_millis(metrics_every_ms),
            ));
        }
    }
    let trace_path = flags.get("trace").cloned();
    let mut opts = launch_opts(iterations);
    // An injected crash: map the victim's global rank onto its (group,
    // local worker) coordinates. Only the targeted worker fires; `launch`
    // omits these flags on respawn so the kill cannot recur on replay.
    if let (Some(kr), Some(ki)) = (flags.get("kill-rank"), flags.get("kill-iter")) {
        let (Ok(kr), Ok(ki)) = (kr.parse::<u32>(), ki.parse::<u32>()) else {
            eprintln!("bad value for --kill-rank/--kill-iter");
            usage();
        };
        let per_group = sched.num_workers() as u32;
        opts.fault = Some(FaultSpec::kill_at(kr / per_group, kr % per_group, ki));
    }
    // Segment checkpointing + resume (the worker half of the supervisor's
    // gang-restart protocol).
    let recovery = flags.get("ckpt-dir").map(|dir| RecoverySpec {
        dir: PathBuf::from(dir),
        every: flag(&flags, "ckpt-every", 1u32),
        resume: flag(&flags, "resume", 0u32) != 0,
    });
    let sink = trace_path.as_ref().map(|_| Arc::new(BufferSink::new()));
    let mut clock = ClockSync::identity();
    if let Some(s) = &sink {
        opts.trace = Some(s.clone());
        // Agree on a shared trace epoch before training. This is a
        // collective over the whole fabric: `launch` passes --trace to
        // every rank or to none. Pin this process's local epoch first so
        // the offset measured here is the one events are stamped against.
        let _ = now_ns();
        clock = match rendezvous_epoch(ep.as_ref(), &now_ns, opts.recv_timeout) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("rank {rank}: trace clock rendezvous failed: {e}");
                std::process::exit(1);
            }
        };
    }
    match train_worker_process_recoverable(ep, &sched, launch_model(d), opts, w, recovery.as_ref())
    {
        Ok(Some(outcome)) => {
            if let Some(path) = flags.get("out") {
                let mut bytes = Vec::new();
                write_f32s(&mut bytes, &outcome.iteration_losses);
                write_f32s(&mut bytes, &outcome.flat_params);
                std::fs::write(path, bytes).expect("write result file");
            }
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("rank {rank}: training failed: {e}");
            std::process::exit(1);
        }
    }
    training_done.store(true, Ordering::Relaxed);
    // Land every still-unacknowledged frame (final gather results, last
    // pipeline messages) before this process exits — a dead process can
    // never retransmit, and that is the one loss the session cannot heal.
    if !tcp_ep.drain_unacked(std::time::Duration::from_secs(5)) {
        eprintln!("rank {rank}: exiting with unacknowledged frames (peer gone?)");
    }
    if let Some(path) = flags.get("stats") {
        let s = tcp_ep.session_stats();
        let stats = serde_json::json!({
            "schema": "chimera-comm/session/v1",
            "rank": rank,
            "reconnects": s.reconnects,
            "retransmits": s.retransmits,
            "dup_dropped": s.dup_dropped,
            "chaos_events": s.chaos_events,
            "heartbeats_sent": s.heartbeats_sent,
        });
        std::fs::write(path, stats.to_string()).expect("write session stats file");
    }
    if let (Some(path), Some(sink)) = (&trace_path, &sink) {
        // Export on the shared time axis: shift every event by this rank's
        // measured clock offset and stamp the rank as the process group, so
        // per-rank files overlay coherently in one viewer.
        let mut events = sink.drain();
        for ev in &mut events {
            ev.shift_ns(clock.offset_ns);
            match ev {
                chimera::trace::Event::Span(s) => s.pid = rank,
                chimera::trace::Event::Counter(c) => c.pid = rank,
            }
        }
        write_jsonl(path, &events).expect("write trace file");
    }
    if let Some(p) = publisher {
        p.stop(); // sends the final snapshot
    }
    if let Some(agg) = aggregator {
        // Give the other ranks' final snapshots a moment to arrive.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let merged = agg.stop();
        if let Some(path) = flags.get("metrics-out") {
            std::fs::write(path, merged.to_string()).expect("write metrics file");
            eprintln!("rank 0: metrics -> {path}");
        } else {
            println!("{merged}");
        }
    }
    drop(server);
}

/// Read `calibration.bwd_over_fwd` from a `fig_kernels` results artifact
/// (`results/kernels.json` schema) and build the matching unit costs.
fn load_calibrated_costs(path: &str) -> Result<UnitCosts, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let ratio = doc["calibration"]["bwd_over_fwd"]
        .as_f64()
        .ok_or("missing calibration.bwd_over_fwd (regenerate with fig_kernels)")?;
    Ok(UnitCosts::calibrated(ratio))
}

/// Profile one or more trace files: exclusive bubble attribution, critical
/// path, optional drift against the unit-cost simulation (optionally under
/// kernel-calibrated costs), and α-β comm residuals when the comm-overhead
/// benchmark results are on disk.
fn cmd_profile(args: std::env::Args) {
    let mut paths = Vec::new();
    let mut json = false;
    let mut sim: Option<(String, u32, u32)> = None;
    let mut calibration: Option<String> = None;
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--sim" => {
                let scheme = it.next().unwrap_or_else(|| usage());
                let d = parse(it.next(), 0u32);
                let n = parse(it.next(), 0u32);
                if d == 0 || n == 0 {
                    eprintln!("--sim needs <scheme> <D> <N>");
                    usage();
                }
                sim = Some((scheme, d, n));
            }
            "--calibration" => {
                calibration = Some(it.next().unwrap_or_else(|| usage()));
            }
            other if other.starts_with("--") => {
                eprintln!("unexpected flag: {other}");
                usage();
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!("profile needs at least one trace file");
        usage();
    }
    let mut events = Vec::new();
    for p in &paths {
        match read_jsonl(p) {
            Ok(mut ev) => events.append(&mut ev),
            Err(e) => {
                eprintln!("{p}: {e}");
                std::process::exit(1);
            }
        }
    }
    // A kernel-bench artifact (results/kernels.json) carries the measured
    // bwd/fwd ratio of the packed kernels; drifting against calibrated
    // costs asks "does the pipeline behave as *this machine's* kernels
    // predict" instead of assuming the textbook 2x backward.
    let costs = match &calibration {
        Some(path) => match load_calibrated_costs(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("--calibration {path}: {e}");
                std::process::exit(1);
            }
        },
        None => UnitCosts::practical(),
    };
    let drift_report = sim.map(|(scheme, d, n)| {
        drift_with_costs(&events, &scheme, d, n, costs).unwrap_or_else(|e| {
            eprintln!("drift: {e}");
            std::process::exit(1);
        })
    });
    let mut report = profile(&events, drift_report);
    if let Ok(fits) = load_comm_fits("results/comm_overhead.json") {
        report = report.with_residuals(&events, &fits);
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
}

/// Measure tracing overhead: best-of-R wall clock of the same in-process
/// training run with the trace sink off and on.
fn cmd_overhead(args: std::env::Args) {
    let mut positional = Vec::new();
    let mut repeats = 3u32;
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--repeats" => repeats = parse(it.next(), 3u32),
            other if other.starts_with("--") => {
                eprintln!("unexpected flag: {other}");
                usage();
            }
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let d = parse(positional.next(), 4u32);
    let n = parse(positional.next(), d);
    let iterations = parse(positional.next(), 8u32);
    // A heavier-than-tiny model so per-op compute dominates fixed costs:
    // the overhead fraction then reflects real workloads instead of the
    // clock-read/event-construction floor of microsecond toy ops.
    let cfg = ModelConfig {
        layers: d as usize,
        hidden: 64,
        seq: 16,
        vocab: 64,
        heads: 4,
        ..ModelConfig::tiny()
    };
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let mut events_captured = 0usize;
    let mut run = |traced: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let sink = traced.then(|| Arc::new(BufferSink::new()));
            let opts = TrainOptions {
                micro_batch: 2,
                iterations,
                lr: 0.05,
                momentum: 0.9,
                data_seed: 7,
                trace: sink.clone().map(|s| s as _),
                ..TrainOptions::default()
            };
            let t0 = std::time::Instant::now();
            train(&sched, cfg, opts).expect("training succeeds");
            best = best.min(t0.elapsed().as_secs_f64());
            if let Some(s) = &sink {
                events_captured = s.drain().len();
            }
        }
        best
    };
    let baseline_s = run(false);
    let traced_s = run(true);
    let overhead_frac = traced_s / baseline_s - 1.0;
    println!(
        "{}",
        serde_json::json!({
            "schema": "chimera-obs/overhead/v1",
            "d": d,
            "n": n,
            "iterations": iterations,
            "repeats": repeats,
            "events": events_captured,
            "baseline_s": baseline_s,
            "traced_s": traced_s,
            "overhead_frac": overhead_frac,
        })
    );
}

fn main() {
    let mut args = std::env::args();
    let _ = args.next();
    match args.next().as_deref() {
        Some("render") => cmd_render(args),
        Some("plan") => cmd_plan(args),
        Some("serve") => cmd_serve(args),
        Some("query") => cmd_query(args),
        Some("simulate") => cmd_simulate(args),
        Some("train") => cmd_train(args),
        Some("launch") => cmd_launch(args),
        Some("worker") => cmd_worker(args),
        Some("verify") => cmd_verify(args),
        Some("profile") => cmd_profile(args),
        Some("overhead-check") => cmd_overhead(args),
        _ => usage(),
    }
}
