//! Figure 18: scaling to large mini-batches for GPT-2 on 512 GPU nodes
//! (B̂ from 512 to 8,192). Paper: *forward doubling* wins on GPT-2 (where
//! recomputation is required anyway), averaging 1.13x over PipeDream-2BW,
//! 1.18x over GPipe, 2.60x over GEMS, and 1.34x over DAPPLE.

use chimera_bench::scaling::baseline_schemes;
use chimera_bench::{candidate_headers, candidate_json, candidate_row, print_table, save_json};
use chimera_core::chimera::ScaleMethod;
use chimera_perf::planner::{best, plan_chimera};
use chimera_perf::{ClusterSpec, ModelSpec};

fn main() {
    let model = ModelSpec::gpt2();
    let cluster = ClusterSpec::piz_daint();
    let p = 512u32;
    let mut json = Vec::new();
    for b_hat in [512u64, 1024, 2048, 4096, 8192] {
        let mut rows = Vec::new();
        let mut add = |label: String, c: Option<chimera_perf::Candidate>| {
            if let Some(c) = c {
                let mut row = candidate_row(&c);
                row[0] = label.clone();
                rows.push(row);
                let mut j = candidate_json(&c);
                j["b_hat_setting"] = serde_json::json!(b_hat);
                j["label"] = serde_json::json!(label);
                json.push(j);
            }
        };
        for scheme in baseline_schemes() {
            add(scheme.label(), best(scheme, model, cluster, p, b_hat));
        }
        for scale in [
            ScaleMethod::Direct,
            ScaleMethod::ForwardDoubling { recompute: true },
            ScaleMethod::BackwardHalving,
        ] {
            let label = match scale {
                ScaleMethod::Direct => "Chimera (direct)",
                ScaleMethod::ForwardDoubling { .. } => "Chimera (fwd-doubling)",
                ScaleMethod::BackwardHalving => "Chimera (bwd-halving)",
            };
            add(
                label.to_string(),
                plan_chimera(1, scale, model, cluster, p, b_hat),
            );
        }
        print_table(
            &format!("Fig. 18: GPT-2 on P=512, B̂={b_hat}"),
            &candidate_headers(),
            &rows,
        );
    }
    save_json("fig18_large_batch_gpt2", serde_json::json!(json));
}
