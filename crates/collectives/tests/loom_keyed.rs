//! Exhaustive-interleaving checks for the keyed allreduce
//! (`KeyedMember`), driven by the `chimera_comm::modelcheck` explorer
//! (run with `RUSTFLAGS="--cfg loom"`, see the CI `loom` job).
//!
//! The properties: every member of every interleaving observes the same
//! bit-exact, key-ordered sum; rounds never bleed into each other even when
//! a fast member runs a round ahead; and round state is retired once all
//! members have fetched.
#![cfg(loom)]

use chimera_collectives::{keyed_group, sum_in_key_order, KeyedMember};
use chimera_comm::modelcheck::{explore, StepOutcome};

struct World {
    members: Vec<KeyedMember>,
    pc: Vec<usize>,
    /// `results[rank]` = fetched vectors in that member's round order.
    results: Vec<Vec<Vec<f32>>>,
}

impl World {
    fn new(n: usize) -> Self {
        World {
            members: keyed_group(n),
            pc: vec![0; n],
            results: vec![Vec::new(); n],
        }
    }
}

/// One member's step through a fixed program of `rounds` deposit+fetch
/// pairs; `contrib(rank, round)` supplies the deposit.
fn run_member(
    w: &mut World,
    rank: usize,
    rounds: usize,
    contrib: impl Fn(usize, usize) -> Vec<(u64, Vec<f32>)>,
) -> StepOutcome {
    let pc = w.pc[rank];
    let round = pc / 2;
    if pc % 2 == 0 {
        w.members[rank].deposit(contrib(rank, round));
        w.pc[rank] += 1;
        StepOutcome::Progress
    } else {
        match w.members[rank].try_fetch() {
            None => StepOutcome::Blocked,
            Some(v) => {
                w.results[rank].push(v);
                w.pc[rank] += 1;
                if round + 1 == rounds {
                    StepOutcome::Done
                } else {
                    StepOutcome::Progress
                }
            }
        }
    }
}

/// Three members whose contributions are adversarial to float reassociation
/// (1e8 + 1 + -1e8): the reduction must be the *key-ordered* sum, bit-exact
/// and identical on every member, in every interleaving — arrival order
/// must never leak into the result.
#[test]
fn reduction_is_bit_exact_and_order_independent() {
    let vals = [1e8f32, 1.0, -1e8];
    let contrib = move |rank: usize, _round: usize| vec![(0u64, vec![vals[rank]])];
    let expected = sum_in_key_order(vals.iter().enumerate().map(|(r, &v)| (0u64, r, vec![v])));
    // Key-order is rank order here, and f32 addition is not associative:
    // a different reduction order would visibly change the bits.
    assert_eq!(expected, vec![(1e8f32 + 1.0) + -1e8]);

    let ex = explore(
        3,
        || World::new(3),
        move |w, t| run_member(w, t, 1, contrib),
        |w, sched| {
            for (rank, res) in w.results.iter().enumerate() {
                assert_eq!(
                    res,
                    &vec![expected.clone()],
                    "schedule {sched:?}: member {rank} saw a reassociated sum"
                );
            }
        },
    );
    assert!(
        ex.deadlock_free(),
        "deadlocked schedules: {:?}",
        ex.deadlocks
    );
    assert!(
        ex.executions >= 3,
        "only {} schedules explored",
        ex.executions
    );
}

/// Two members, two overlapping rounds: one member may deposit round 1
/// before the other has touched round 0. Rounds must stay isolated (round
/// `k`'s result only ever contains round-`k` contributions) and retired
/// round state must not resurface.
#[test]
fn overlapping_rounds_stay_isolated() {
    let contrib = |rank: usize, round: usize| vec![(0u64, vec![(round * 10 + rank + 1) as f32])];
    // Round 0: 1 + 2; round 1: 11 + 12.
    let expected = [vec![3.0f32], vec![23.0f32]];

    let ex = explore(
        2,
        || World::new(2),
        move |w, t| run_member(w, t, 2, contrib),
        |w, sched| {
            for (rank, res) in w.results.iter().enumerate() {
                assert_eq!(
                    res.as_slice(),
                    &expected,
                    "schedule {sched:?}: member {rank} mixed rounds"
                );
            }
        },
    );
    assert!(
        ex.deadlock_free(),
        "deadlocked schedules: {:?}",
        ex.deadlocks
    );
    // A fast member running a full round ahead is among the schedules.
    assert!(
        ex.executions >= 5,
        "only {} schedules explored",
        ex.executions
    );
}

/// A member that never deposits wedges everyone: every interleaving of the
/// remaining members deadlocks rather than completing with a partial sum.
#[test]
fn missing_contribution_never_yields_a_partial_sum() {
    let ex = explore(
        2,
        || World::new(3), // three-member group, member 2 never shows up
        |w, t| match w.pc[t] {
            0 => {
                w.members[t].deposit(vec![(0, vec![1.0])]);
                w.pc[t] += 1;
                StepOutcome::Progress
            }
            _ => match w.members[t].try_fetch() {
                None => StepOutcome::Blocked,
                Some(v) => {
                    w.results[t].push(v);
                    StepOutcome::Done
                }
            },
        },
        |w, sched| {
            for res in &w.results {
                assert!(res.is_empty(), "schedule {sched:?} produced a partial sum");
            }
        },
    );
    assert!(ex.executions >= 1);
    assert_eq!(
        ex.deadlocks.len(),
        ex.executions,
        "some interleaving completed without member 2's contribution"
    );
}
