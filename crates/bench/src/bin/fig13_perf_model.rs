//! Figure 13: Eq. 1 performance-model predictions vs simulated throughput of
//! Chimera across (W, D) configurations — Bert-48 on 32 nodes (B̂ = 256) and
//! GPT-2 on 512 nodes (B̂ = 512). The paper reports < 10% model error.

use chimera_bench::{print_table, save_json};
use chimera_core::chimera::{chimera, ChimeraConfig};
use chimera_core::schedule::SyncStrategy;
use chimera_core::sync::place_sync;
use chimera_core::unit_time::UnitCosts;
use chimera_perf::planner::{batch_candidates, depth_candidates};
use chimera_perf::{predict, ClusterSpec, ModelSpec, TrainConfig};
use chimera_sim::simulate;

fn main() {
    let cluster = ClusterSpec::piz_daint();
    let mut json = Vec::new();
    for (model, p, b_hat) in [
        (ModelSpec::bert48(), 32u32, 256u64),
        (ModelSpec::gpt2(), 512, 512),
    ] {
        let mut rows = Vec::new();
        let mut worst_err = 0.0f64;
        for d in depth_candidates(p, &model) {
            let w = p / d;
            // Greedy max B that fits memory (§3.4), like the planner.
            let mut picked = None;
            for b in batch_candidates(b_hat, w).into_iter().rev() {
                let denom = w as u64 * b as u64;
                if b_hat % denom != 0 {
                    continue;
                }
                let n = (b_hat / denom) as u32;
                let sched = place_sync(
                    chimera(&ChimeraConfig::new(d, n)).unwrap(),
                    SyncStrategy::EagerOpt,
                    UnitCosts::practical(),
                );
                let cost = TrainConfig {
                    model,
                    cluster,
                    d,
                    w,
                    b,
                    stage_replicas: 2,
                }
                .cost_model();
                let rep = simulate(&sched, &cost).expect("simulates");
                let (sched, rep, rec) = if rep.fits(cluster.usable_mem()) {
                    (sched, rep, false)
                } else {
                    let r = sched.with_recompute();
                    let rep = simulate(&r, &cost).expect("simulates");
                    (r, rep, true)
                };
                if rep.fits(cluster.usable_mem()) {
                    picked = Some((b, n, sched, cost, rep, rec));
                    break;
                }
            }
            let Some((b, n, sched, cost, rep, rec)) = picked else {
                continue;
            };
            let pred = predict(&sched, &cost);
            let err = (pred.t_iter_s - rep.iter_time_s).abs() / rep.iter_time_s;
            worst_err = worst_err.max(err);
            rows.push(vec![
                w.to_string(),
                d.to_string(),
                b.to_string(),
                n.to_string(),
                if rec { "R" } else { "-" }.to_string(),
                format!("{:.1}", b_hat as f64 / rep.iter_time_s),
                format!("{:.1}", b_hat as f64 / pred.t_iter_s),
                format!("{:.1}%", err * 100.0),
            ]);
            json.push(serde_json::json!({
                "model": model.name,
                "p": p, "w": w, "d": d, "b": b, "n": n,
                "recompute": rec,
                "simulated_throughput": b_hat as f64 / rep.iter_time_s,
                "predicted_throughput": b_hat as f64 / pred.t_iter_s,
                "error": err,
            }));
        }
        print_table(
            &format!(
                "Fig. 13: {} on P={p}, B̂={b_hat}: simulated vs Eq.1-predicted throughput",
                model.name
            ),
            &["W", "D", "B", "N", "rec", "sim s/s", "model s/s", "err"],
            &rows,
        );
        println!("worst model error: {:.1}%", worst_err * 100.0);
    }
    save_json("fig13_perf_model", serde_json::json!(json));
}
