//! Figure 15: weak scaling for GPT-2 on Piz Daint — P from 512 to 2,048, B̂
//! from 512 to 2,048. Paper headline at P=2,048: Chimera beats PipeDream
//! 2.01x, PipeDream-2BW 1.16x, GPipe 1.42x, GEMS 2.34x, DAPPLE 1.38x, with
//! 91.4% parallel efficiency from 512→2,048 nodes.

use chimera_bench::scaling::{best_per_scheme, chimera_speedups};
use chimera_bench::{candidate_headers, candidate_json, candidate_row, print_table, save_json};
use chimera_core::chimera::ScaleMethod;
use chimera_perf::{ClusterSpec, ModelSpec};

fn main() {
    let model = ModelSpec::gpt2();
    let cluster = ClusterSpec::piz_daint();
    let mut json = Vec::new();
    let mut chimera_throughputs = Vec::new();
    for (p, b_hat) in [(512u32, 512u64), (1024, 1024), (2048, 2048)] {
        let results = best_per_scheme(model, cluster, p, b_hat, ScaleMethod::Direct);
        let rows: Vec<Vec<String>> = results
            .iter()
            .filter_map(|(_, c)| c.as_ref().map(candidate_row))
            .collect();
        print_table(
            &format!("Fig. 15: GPT-2 weak scaling, P={p}, B̂={b_hat}"),
            &candidate_headers(),
            &rows,
        );
        for (name, speedup) in chimera_speedups(&results) {
            println!("  Chimera vs {name}: {speedup:.2}x");
        }
        if let Some((_, Some(c))) = results.last() {
            chimera_throughputs.push((p, c.throughput));
        }
        for (name, c) in &results {
            if let Some(c) = c {
                let mut j = candidate_json(c);
                j["p"] = serde_json::json!(p);
                j["label"] = serde_json::json!(name);
                json.push(j);
            }
        }
    }
    if let (Some(&(p0, t0)), Some(&(p1, t1))) =
        (chimera_throughputs.first(), chimera_throughputs.last())
    {
        let eff = (t1 / t0) / (p1 as f64 / p0 as f64);
        println!(
            "\nChimera weak-scaling parallel efficiency {p0}→{p1} nodes: {:.1}% (paper: 91.4%)",
            eff * 100.0
        );
    }
    save_json("fig15_weak_gpt2", serde_json::json!(json));
}
