//! Per-worker memory accounting (§4.1, Fig. 9).
//!
//! Peak memory = static weights (parameters × stashed versions + gradient and
//! optimizer buffers, for every stage replica the worker holds) + the peak of
//! dynamically stashed activations measured by the executor.

use chimera_core::schedule::{Schedule, Scheme};
use chimera_core::unit_time::Timeline;
use chimera_core::WorkerId;

use crate::cost::SimCostModel;

/// Static weight-related bytes per worker.
///
/// Weight-version multipliers follow Table 2: PipeDream stashes up to
/// `D - s` parameter versions at stage `s` (steady state of per-micro
/// updates), PipeDream-2BW double-buffers (2 versions), synchronous schemes
/// keep one version per stage replica. Gradient/optimizer buffers exist once
/// per stage replica regardless of stashed versions.
pub fn weights_bytes(sched: &Schedule, cost: &SimCostModel) -> Vec<u64> {
    let d = sched.d;
    (0..sched.num_workers())
        .map(|w| {
            sched
                .placement
                .held_by(WorkerId(w as u32))
                .into_iter()
                .map(|(_, stage)| {
                    let st = &cost.stages[stage.idx()];
                    let versions = match sched.scheme {
                        Scheme::PipeDream => (d - stage.0) as u64,
                        Scheme::PipeDream2Bw => 2,
                        _ => 1,
                    };
                    st.param_bytes * versions + st.grad_opt_bytes
                })
                .sum()
        })
        .collect()
}

/// Peak memory per worker: weights + measured activation peak.
pub fn peak_memory_bytes(sched: &Schedule, cost: &SimCostModel, timeline: &Timeline) -> Vec<u64> {
    weights_bytes(sched, cost)
        .into_iter()
        .zip(&timeline.peak_activations)
        .map(|(w, &a)| w + a.round() as u64)
        .collect()
}

/// Whether every worker fits in `capacity_bytes` of device memory.
pub fn fits(peaks: &[u64], capacity_bytes: u64) -> bool {
    peaks.iter().all(|&p| p <= capacity_bytes)
}

/// Memory imbalance: `(max - min) / max` across workers; Chimera's schedule
/// yields a markedly lower value than DAPPLE/PipeDream-2BW (Fig. 9).
pub fn imbalance(peaks: &[u64]) -> f64 {
    let max = peaks.iter().copied().max().unwrap_or(0);
    let min = peaks.iter().copied().min().unwrap_or(0);
    if max == 0 {
        0.0
    } else {
        (max - min) as f64 / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::AllReduceAlgo;
    use crate::cost::StageCosts;
    use crate::network::{NetworkModel, Topology};
    use chimera_core::baselines::{dapple, pipedream, pipedream_2bw};
    use chimera_core::chimera::{chimera, ChimeraConfig};
    use chimera_core::unit_time::execute_with;

    fn cost(d: u32) -> SimCostModel {
        SimCostModel {
            stages: vec![
                StageCosts {
                    fwd_s: 1e-3,
                    bwd_s: 2e-3,
                    recompute_s: 1e-3,
                    boundary_bytes: 1 << 20,
                    act_bytes: 8 << 20,
                    param_bytes: 100 << 20,
                    grad_opt_bytes: 200 << 20,
                };
                d as usize
            ],
            network: NetworkModel::cray_aries(),
            topology: Topology::one_per_node(d),
            allreduce_participants: 2,
            allreduce_algo: AllReduceAlgo::Rabenseifner,
            allreduce_beta_factor: 1.0,
            launch_overhead_s: 0.0,
            half_chunk_penalty: 1.0,
            comm_compute_interference: 0.0,
            p2p_host_overhead_s: 0.0,
            p2p_host_s_per_byte: 0.0,
            grad_compression: 1.0,
        }
    }

    #[test]
    fn pipedream_stashes_d_versions_at_stage0() {
        let d = 4;
        let s = pipedream(d, 4);
        let w = weights_bytes(&s, &cost(d));
        // Stage 0: 4 versions * 100M + 200M; stage 3: 1 * 100M + 200M.
        assert_eq!(w[0], 4 * (100 << 20) + (200 << 20));
        assert_eq!(w[3], (100 << 20) + (200 << 20));
        assert!(w[0] > w[3]);
    }

    #[test]
    fn chimera_holds_two_stage_replicas() {
        let d = 4;
        let s = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let w = weights_bytes(&s, &cost(d));
        for &b in &w {
            assert_eq!(b, 2 * ((100 << 20) + (200 << 20)));
        }
    }

    #[test]
    fn dapple_weights_uniform_single_copy() {
        let d = 4;
        let w = weights_bytes(&dapple(d, 8), &cost(d));
        assert!(w.iter().all(|&b| b == (100 << 20) + (200 << 20)));
    }

    #[test]
    fn two_bw_double_buffers() {
        let d = 4;
        let w = weights_bytes(&pipedream_2bw(d, 8), &cost(d));
        assert!(w.iter().all(|&b| b == 2 * (100 << 20) + (200 << 20)));
    }

    #[test]
    fn chimera_more_balanced_than_dapple() {
        let d = 8;
        let c = cost(d);
        let chim = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let dap = dapple(d, d);
        let tl_c = execute_with(&chim, &c).unwrap();
        let tl_d = execute_with(&dap, &c).unwrap();
        let peaks_c = peak_memory_bytes(&chim, &c, &tl_c);
        let peaks_d = peak_memory_bytes(&dap, &c, &tl_d);
        assert!(
            imbalance(&peaks_c) < imbalance(&peaks_d),
            "chimera {:?} vs dapple {:?}",
            peaks_c,
            peaks_d
        );
    }

    #[test]
    fn fits_checks_capacity() {
        assert!(fits(&[10, 20], 20));
        assert!(!fits(&[10, 21], 20));
    }

    #[test]
    fn imbalance_zero_for_uniform() {
        assert_eq!(imbalance(&[5, 5, 5]), 0.0);
        assert!((imbalance(&[10, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 0.0);
    }
}
