//! `chimera-cli` — command-line front end for the Chimera reproduction.
//!
//! ```text
//! chimera-cli render  <scheme> [D] [N]            ASCII schedule + analytics
//! chimera-cli plan    <bert48|gpt2> [P] [B̂]       best (W,D,B) per scheme
//! chimera-cli simulate <scheme> <bert48|gpt2> <P> <D> <B> <B̂>
//! chimera-cli train   [D] [N] [iters]             real pipelined training
//! chimera-cli launch  --workers P [--transport tcp|local] [--d D] [--n N]
//!                     [--iters I]                 multi-process training
//! chimera-cli verify  [scheme [D] [N]] [--json]   static schedule verifier
//! ```
//!
//! `verify` runs the static analyses of `chimera-verify` (happens-before
//! deadlock detection, send/recv matching, buffer-hazard and memory lints)
//! on one schedule, or — with no scheme — on every built-in scheme for
//! D ∈ {2, 4, 8}. Exit status 1 when any diagnostic of error severity is
//! found.
//!
//! `launch` spawns `P` worker **processes** (one pipeline worker each, `W =
//! P/D` data-parallel groups) connected over the TCP transport, then re-runs
//! the identical configuration in-process and verifies the two parameter
//! sets are bit-identical. The hidden `worker` subcommand is what each
//! spawned process executes.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

use chimera::comm::{TcpConfig, TcpFabric, Transport};
use chimera::core::analysis;
use chimera::core::baselines::{dapple, gems, gpipe, pipedream_2bw_steady, pipedream_steady};
use chimera::core::chimera::{chimera as chimera_sched, ChimeraConfig, ScaleMethod};
use chimera::core::render;
use chimera::core::schedule::{Schedule, Scheme, SyncStrategy};
use chimera::core::sync::place_sync;
use chimera::core::unit_time::{execute, UnitCosts};
use chimera::nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera::perf::planner::{best, plan_chimera, PlanScheme};
use chimera::perf::{ClusterSpec, ModelSpec, TrainConfig};
use chimera::runtime::{train, train_hybrid, train_worker_process, TrainOptions};
use chimera::sim::simulate;
use chimera::verify::verify_span;

fn usage() -> ! {
    eprintln!(
        "usage:\n  chimera-cli render  <scheme> [D] [N]\n  chimera-cli plan    <bert48|gpt2> [P] [B_hat]\n  chimera-cli simulate <scheme> <bert48|gpt2> <P> <D> <B> <B_hat>\n  chimera-cli train   [D] [N] [iters]\n  chimera-cli launch  --workers P [--transport tcp|local] [--d D] [--n N] [--iters I]\n  chimera-cli verify  [scheme [D] [N]] [--json]\n\nschemes: chimera | chimera-f2 | doubling | halving | dapple | gpipe | gems |\n         pipedream | pipedream-2bw"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: Option<String>, default: T) -> T {
    s.and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_schedule(scheme: &str, d: u32, n: u32) -> Schedule {
    match scheme {
        "chimera" => chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config"),
        "chimera-f2" => chimera_sched(&ChimeraConfig {
            d,
            n,
            f: 2,
            scale: ScaleMethod::Direct,
        })
        .expect("valid config"),
        "doubling" => chimera_sched(&ChimeraConfig {
            d,
            n,
            f: 1,
            scale: ScaleMethod::ForwardDoubling { recompute: true },
        })
        .expect("valid config"),
        "halving" => chimera_sched(&ChimeraConfig {
            d,
            n,
            f: 1,
            scale: ScaleMethod::BackwardHalving,
        })
        .expect("valid config"),
        "dapple" => dapple(d, n),
        "gpipe" => gpipe(d, n),
        "gems" => gems(d, n),
        "pipedream" => pipedream_steady(d, n, 2),
        "pipedream-2bw" => pipedream_2bw_steady(d, n, 2),
        _ => usage(),
    }
}

fn model_spec(name: &str) -> ModelSpec {
    match name {
        "bert48" => ModelSpec::bert48(),
        "gpt2" => ModelSpec::gpt2(),
        "gpt2-32" => ModelSpec::gpt2_32(),
        _ => usage(),
    }
}

fn cmd_render(mut args: std::env::Args) {
    let scheme = args.next().unwrap_or_else(|| usage());
    let d = parse(args.next(), 4u32);
    let n = parse(args.next(), d);
    let sched = build_schedule(&scheme, d, n);
    let tl = execute(&sched, UnitCosts::practical()).expect("executes");
    println!("{scheme} D={d} N={n} (backward = 2x forward):\n");
    println!("{}", render::render(&tl));
    println!("{}", render::summary(&tl));
    if matches!(
        sched.scheme,
        Scheme::Chimera | Scheme::Dapple | Scheme::GPipe | Scheme::Gems
    ) {
        let a = analysis::table2(sched.scheme, d, n);
        println!(
            "Table-2 analytics: bubble {:.3}, weights {:?} Mθ, activations {:?} Ma",
            a.bubble_ratio, a.weights_memory, a.activations_memory
        );
    }
}

fn cmd_plan(mut args: std::env::Args) {
    let model = model_spec(&args.next().unwrap_or_else(|| usage()));
    let p = parse(args.next(), 32u32);
    let b_hat = parse(args.next(), 512u64);
    let cluster = ClusterSpec::piz_daint();
    println!("{} on P={p} (Piz Daint profile), B̂={b_hat}:\n", model.name);
    println!(
        "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12} {:>8}",
        "scheme", "W", "D", "B", "N", "rec", "samples/s", "peakGiB"
    );
    let print_cand = |label: String, c: Option<chimera::perf::Candidate>| match c {
        Some(c) => println!(
            "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12.1} {:>8.2}",
            label,
            c.w,
            c.d,
            c.b,
            c.n,
            if c.recompute { "R" } else { "-" },
            c.throughput,
            c.peak_mem as f64 / (1u64 << 30) as f64
        ),
        None => println!("{label:<24} (no feasible configuration)"),
    };
    for scheme in [
        PlanScheme::GPipe,
        PlanScheme::Dapple,
        PlanScheme::Gems,
        PlanScheme::PipeDream,
        PlanScheme::PipeDream2Bw,
    ] {
        print_cand(scheme.label(), best(scheme, model, cluster, p, b_hat));
    }
    for scale in [
        ScaleMethod::Direct,
        ScaleMethod::ForwardDoubling { recompute: true },
        ScaleMethod::BackwardHalving,
    ] {
        let c = plan_chimera(1, scale, model, cluster, p, b_hat);
        let label = c
            .as_ref()
            .map(|c| c.scheme.label())
            .unwrap_or_else(|| "Chimera".into());
        print_cand(label, c);
    }
}

fn cmd_simulate(mut args: std::env::Args) {
    let scheme = args.next().unwrap_or_else(|| usage());
    let model = model_spec(&args.next().unwrap_or_else(|| usage()));
    let p = parse(args.next(), 32u32);
    let d = parse(args.next(), 4u32);
    let b = parse(args.next(), 4u32);
    let b_hat = parse(args.next(), 512u64);
    let w = p / d;
    let n = (b_hat / (w as u64 * b as u64)).max(1) as u32;
    let base = build_schedule(&scheme, d, n);
    let replicas = base.placement.replicas();
    let sched = if base.flushes {
        place_sync(base, SyncStrategy::EagerOpt, UnitCosts::practical())
    } else {
        base
    };
    let cluster = ClusterSpec::piz_daint();
    let cost = TrainConfig {
        model,
        cluster,
        d,
        w,
        b,
        stage_replicas: replicas,
    }
    .cost_model();
    let rep = simulate(&sched, &cost).expect("simulates");
    println!(
        "{scheme} {} P={p} (W={w} D={d} B={b} N={n}):\n  iteration {:.4}s | {:.1} samples/s | bubble {:.3} | peak {:.2} GiB{}",
        model.name,
        rep.iter_time_s,
        rep.throughput(b_hat),
        rep.bubble_ratio,
        rep.max_peak_mem() as f64 / (1u64 << 30) as f64,
        if rep.fits(cluster.usable_mem()) { "" } else { "  [OOM]" }
    );
}

fn cmd_train(mut args: std::env::Args) {
    let d = parse(args.next(), 4u32);
    let n = parse(args.next(), d);
    let iterations = parse(args.next(), 8u32);
    let cfg = ModelConfig {
        layers: d as usize,
        ..ModelConfig::tiny()
    };
    let opts = TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 7,
        ..TrainOptions::default()
    };
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let result = train(&sched, cfg, opts.clone()).expect("training succeeds");
    println!("Chimera D={d} N={n}, {iterations} iterations on {d} threads:");
    for (i, l) in result.iteration_losses.iter().enumerate() {
        println!("  iter {i:>3}: loss {l:.4}");
    }
    // Cross-check the last state against sequential SGD.
    let mut r = ReferenceTrainer::new(
        Stage::build_all(cfg, d),
        SyntheticData::new(cfg, opts.data_seed),
        opts.micro_batch,
        opts.lr,
        opts.momentum,
    );
    for it in 0..iterations {
        r.train_iteration(it as u64 * n as u64, n);
    }
    assert_eq!(result.flat_params(), r.flat_params());
    println!("✓ bit-identical to sequential mini-batch SGD");
}

/// Schemes swept by `verify` when no scheme is given. `chimera-f2` needs
/// `2 | D/2` and is skipped where that fails.
const VERIFY_SCHEMES: [&str; 9] = [
    "gpipe",
    "dapple",
    "gems",
    "pipedream",
    "pipedream-2bw",
    "chimera",
    "chimera-f2",
    "doubling",
    "halving",
];

/// Span iteration count matching what `build_schedule` generates: the
/// steady-state PipeDream schedules cover two iterations back to back.
fn verify_iterations(scheme: &str) -> u32 {
    if scheme.starts_with("pipedream") {
        2
    } else {
        1
    }
}

fn cmd_verify(args: std::env::Args) {
    let mut positional = Vec::new();
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                eprintln!("unexpected flag: {other}");
                usage();
            }
            _ => positional.push(a),
        }
    }

    let mut reports = Vec::new();
    match positional.first() {
        Some(scheme) => {
            let d = parse(positional.get(1).cloned(), 4u32);
            let n = parse(positional.get(2).cloned(), 2 * d);
            let sched = build_schedule(scheme, d, n);
            reports.push(verify_span(&sched, verify_iterations(scheme)));
        }
        None => {
            for d in [2u32, 4, 8] {
                for scheme in VERIFY_SCHEMES {
                    if scheme == "chimera-f2" && (d / 2) % 2 != 0 {
                        continue;
                    }
                    let sched = build_schedule(scheme, d, 2 * d);
                    reports.push(verify_span(&sched, verify_iterations(scheme)));
                }
            }
        }
    }

    let clean = reports.iter().all(chimera::verify::VerifyReport::is_clean);
    if json {
        let bodies: Vec<String> = reports
            .iter()
            .map(chimera::verify::VerifyReport::to_json)
            .collect();
        println!("[{}]", bodies.join(",\n"));
    } else {
        for r in &reports {
            println!("{r}");
        }
        println!(
            "{} schedule(s) verified: {}",
            reports.len(),
            if clean { "all clean" } else { "ERRORS FOUND" }
        );
    }
    if !clean {
        std::process::exit(1);
    }
}

/// `--flag value` pairs for the launch/worker subcommands.
fn parse_flags(args: std::env::Args) -> std::collections::HashMap<String, String> {
    let mut flags = std::collections::HashMap::new();
    let mut it = args.peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("unexpected argument: {flag}");
            usage();
        };
        let Some(value) = it.next() else {
            eprintln!("--{name} needs a value");
            usage();
        };
        flags.insert(name.to_string(), value);
    }
    flags
}

fn flag<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: T,
) -> T {
    match flags.get(name) {
        Some(v) => v.parse().ok().unwrap_or_else(|| {
            eprintln!("bad value for --{name}");
            usage()
        }),
        None => default,
    }
}

/// The fixed hyper-parameters `launch`/`worker` share — every process must
/// build the identical run for the bit-identity check to be meaningful.
fn launch_opts(iterations: u32) -> TrainOptions {
    TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 7,
        ..TrainOptions::default()
    }
}

fn launch_model(d: u32) -> ModelConfig {
    ModelConfig {
        layers: d as usize,
        ..ModelConfig::tiny()
    }
}

fn write_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_f32s(bytes: &[u8], pos: &mut usize) -> Vec<f32> {
    let n = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap()) as usize;
    *pos += 4;
    let vals = bytes[*pos..*pos + n * 4]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    *pos += n * 4;
    vals
}

/// Spawn `P` worker processes over TCP, then verify the distributed result
/// is bit-identical to the in-process run of the same configuration.
fn cmd_launch(args: std::env::Args) {
    let flags = parse_flags(args);
    let workers: u32 = flag(&flags, "workers", 4);
    let d: u32 = flag(&flags, "d", workers);
    let n: u32 = flag(&flags, "n", d);
    let iterations: u32 = flag(&flags, "iters", 4);
    let transport = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("tcp")
        .to_string();
    if workers == 0 || d == 0 || !workers.is_multiple_of(d) {
        eprintln!("--workers must be a positive multiple of --d (P = W·D)");
        std::process::exit(2);
    }
    let w = workers / d;
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let cfg = launch_model(d);
    let opts = launch_opts(iterations);

    let (dist_losses, dist_params) = match transport.as_str() {
        "local" => {
            // One process, thread-per-worker over the in-process fabric —
            // the baseline the TCP path is checked against.
            let result =
                train_hybrid(&sched, cfg, opts.clone(), w).expect("in-process training succeeds");
            (result.iteration_losses.clone(), result.flat_params())
        }
        "tcp" => {
            // A free rendezvous port: bind ephemeral, remember, release.
            // Rank 0 rebinds it immediately, so reuse races are negligible.
            let coordinator = {
                let l = TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral port");
                l.local_addr().expect("local addr")
            };
            let exe = std::env::current_exe().expect("own executable path");
            let out_path = std::env::temp_dir().join(format!(
                "chimera-launch-{}-{coordinator}.bin",
                std::process::id()
            ));
            let mut children: Vec<std::process::Child> = (0..workers)
                .map(|rank| {
                    let mut cmd = std::process::Command::new(&exe);
                    cmd.arg("worker")
                        .args(["--rank", &rank.to_string()])
                        .args(["--workers", &workers.to_string()])
                        .args(["--d", &d.to_string()])
                        .args(["--n", &n.to_string()])
                        .args(["--iters", &iterations.to_string()])
                        .args(["--coordinator", &coordinator.to_string()]);
                    if rank == 0 {
                        cmd.args(["--out", &out_path.display().to_string()]);
                    }
                    cmd.spawn().expect("spawn worker process")
                })
                .collect();
            let mut failed = false;
            for (rank, child) in children.iter_mut().enumerate() {
                let status = child.wait().expect("wait for worker");
                if !status.success() {
                    eprintln!("worker rank {rank} exited with {status}");
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            let bytes = std::fs::read(&out_path).expect("rank 0 result file");
            let _ = std::fs::remove_file(&out_path);
            let mut pos = 0;
            let losses = read_f32s(&bytes, &mut pos);
            let params = read_f32s(&bytes, &mut pos);
            (losses, params)
        }
        other => {
            eprintln!("unknown transport {other:?} (use tcp or local)");
            std::process::exit(2);
        }
    };

    println!("chimera launch: {workers} {transport} workers (W={w} D={d} N={n}), {iterations} iterations:");
    for (i, l) in dist_losses.iter().enumerate() {
        println!("  iter {i:>3}: loss {l:.4}");
    }

    // Re-run the identical configuration in-process and demand bitwise
    // agreement.
    let reference = train_hybrid(&sched, cfg, opts, w).expect("in-process training succeeds");
    let ref_params = reference.flat_params();
    let params_match = dist_params.len() == ref_params.len()
        && dist_params
            .iter()
            .zip(&ref_params)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let losses_match = dist_losses.len() == reference.iteration_losses.len()
        && dist_losses
            .iter()
            .zip(&reference.iteration_losses)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !params_match || !losses_match {
        eprintln!(
            "✗ {transport} run diverged from the in-process run (params match: \
             {params_match}, losses match: {losses_match})"
        );
        std::process::exit(1);
    }
    println!(
        "✓ bit-identical to the in-process run ({} parameters)",
        ref_params.len()
    );
}

/// One spawned worker process (hidden subcommand used by `launch`).
fn cmd_worker(args: std::env::Args) {
    let flags = parse_flags(args);
    let rank: u32 = flag(&flags, "rank", 0);
    let workers: u32 = flag(&flags, "workers", 1);
    let d: u32 = flag(&flags, "d", workers);
    let n: u32 = flag(&flags, "n", d);
    let iterations: u32 = flag(&flags, "iters", 4);
    let coordinator: SocketAddr = match flags.get("coordinator").map(|s| s.parse()) {
        Some(Ok(a)) => a,
        _ => {
            eprintln!("worker needs --coordinator <addr>");
            std::process::exit(2);
        }
    };
    let w = workers / d;
    let sched = chimera_sched(&ChimeraConfig::new(d, n)).expect("valid config");
    let ep = match TcpFabric::connect(TcpConfig::new(rank, workers, coordinator)) {
        Ok(ep) => Arc::new(ep) as Arc<dyn Transport>,
        Err(e) => {
            eprintln!("rank {rank}: joining fabric failed: {e}");
            std::process::exit(1);
        }
    };
    match train_worker_process(ep, &sched, launch_model(d), launch_opts(iterations), w) {
        Ok(Some(outcome)) => {
            if let Some(path) = flags.get("out") {
                let mut bytes = Vec::new();
                write_f32s(&mut bytes, &outcome.iteration_losses);
                write_f32s(&mut bytes, &outcome.flat_params);
                std::fs::write(path, bytes).expect("write result file");
            }
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("rank {rank}: training failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args();
    let _ = args.next();
    match args.next().as_deref() {
        Some("render") => cmd_render(args),
        Some("plan") => cmd_plan(args),
        Some("simulate") => cmd_simulate(args),
        Some("train") => cmd_train(args),
        Some("launch") => cmd_launch(args),
        Some("worker") => cmd_worker(args),
        Some("verify") => cmd_verify(args),
        _ => usage(),
    }
}
