//! Multi-process training: the per-process worker entry point behind
//! `chimera-cli launch` / `chimera-cli worker`.
//!
//! Every OS process owns exactly one pipeline worker (one transport rank);
//! [`train_worker_process`] builds that worker against any
//! [`chimera_comm::Transport`] endpoint — the TCP backend for real
//! multi-process runs, the local backend in tests — wires its gradient
//! synchronization through [`chimera_collectives::TransportKeyed`], runs the
//! whole schedule, and gathers results at rank 0 over the control plane.
//!
//! Determinism is preserved end to end: stage initialization, data order,
//! and the keyed-ordered reduction are all identical to the in-process
//! [`crate::train_hybrid`] path, so a distributed run's final parameters are
//! **bit-identical** to the threaded run's (and therefore to sequential
//! SGD).
//!
//! # Cross-process recovery
//!
//! With a [`RecoverySpec`], training proceeds in **segments** of
//! `every` iterations. After each segment — whose closing allreduce is a
//! de-facto barrier, so no rank can be a full segment ahead — every rank
//! writes its slice of the model (held stage replicas, optimizer moments
//! and its loss log) to `rank{r}.seg{k}.ckpt` in a shared directory,
//! atomically (tmp + rename). A checkpoint is **committed** only when all
//! ranks have written it; on `resume`, every rank independently scans the
//! directory for the newest committed segment and replays from there —
//! deterministically, so the restarted run's final parameters are
//! bit-identical to an uninterrupted one. A cross-process supervisor
//! (`chimera-cli launch`) drives this: it detects a dead rank via exit
//! codes and the transport failure detector, kills the stragglers, and
//! gang-restarts every worker with `resume` set.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use chimera_collectives::TransportKeyed;
use chimera_comm::{KeyedReduce, MsgKey, Payload, Rank, Transport};
use chimera_core::schedule::Schedule;
use chimera_core::{StageId, WorkerId};
use chimera_nn::{CheckpointError, ModelConfig, Optimizer, Stage, SyntheticData};

use crate::error::{TrainError, WorkerError};
use crate::worker::{SegmentSpec, TrainOptions, Worker};

/// Control-plane tag carrying a worker's `(micro, loss)` pairs to rank 0.
const LOSS_TAG: u32 = u32::MAX;

/// Control-plane tag for the final parameters of one `(replica, stage)`
/// copy. Replica and stage ids are far below 2^16 in any runnable config.
fn stage_tag(replica: u32, stage: u32) -> u32 {
    (replica << 16) | stage
}

/// What rank 0 assembles after a distributed run. Ranks other than 0 ship
/// their slice to rank 0 and get `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistOutcome {
    /// Mean loss per iteration, over all `N·W` micro-batches.
    pub iteration_losses: Vec<f32>,
    /// Concatenated final parameters of stages `0..D`, every replica copy
    /// verified bit-identical — comparable with
    /// [`crate::TrainResult::flat_params`] and
    /// [`chimera_nn::ReferenceTrainer::flat_params`].
    pub flat_params: Vec<f32>,
}

fn escalate(e: WorkerError) -> TrainError {
    let (group, worker, iteration) = e.location();
    match e {
        WorkerError::Killed { .. } => TrainError::WorkerLost {
            group,
            worker,
            iteration,
            recoveries: 0,
        },
        WorkerError::RecvTimeout { op, waited, .. } => TrainError::Timeout {
            group,
            worker,
            iteration,
            op,
            waited,
        },
        WorkerError::AllReduceTimeout { stage, waited, .. } => TrainError::Timeout {
            group,
            worker,
            iteration,
            op: format!("allreduce wait for stage {stage}"),
            waited,
        },
        WorkerError::PeerGone { to, .. } => TrainError::Timeout {
            group,
            worker,
            iteration,
            op: format!("send to dead peer w{to}"),
            waited: Duration::ZERO,
        },
    }
}

/// A gather at rank 0 that never completed.
fn gather_timeout(iterations: u32, key: MsgKey, waited: Duration) -> TrainError {
    TrainError::Timeout {
        group: 0,
        worker: 0,
        iteration: iterations,
        op: format!("gather {}", key.describe()),
        waited,
    }
}

/// How a worker process checkpoints for — and resumes after — a
/// cross-process failure. See the module docs for the commit protocol.
#[derive(Debug, Clone)]
pub struct RecoverySpec {
    /// Directory shared by all ranks (same host or shared filesystem)
    /// holding the per-rank segment checkpoints.
    pub dir: PathBuf,
    /// Segment length in iterations (a checkpoint after each). Zero means
    /// one segment for the whole run (checkpoint only at the end).
    pub every: u32,
    /// Scan `dir` for the newest committed segment and replay from it.
    /// With no committed checkpoint the run starts fresh.
    pub resume: bool,
}

/// Run this process's single pipeline worker of a `W·D` fabric and take
/// part in the final result gather.
///
/// The fabric must have exactly `W · sched.num_workers()` ranks laid out
/// group-major (rank = `group · D + local worker id`); `ep.rank()` decides
/// which worker this process executes. Rank 0 returns the assembled
/// [`DistOutcome`]; every other rank returns `Ok(None)` after shipping its
/// losses and stage copies to rank 0.
pub fn train_worker_process(
    ep: Arc<dyn Transport>,
    sched: &Schedule,
    cfg: ModelConfig,
    opts: TrainOptions,
    w: u32,
) -> Result<Option<DistOutcome>, TrainError> {
    train_worker_process_recoverable(ep, sched, cfg, opts, w, None)
}

/// [`train_worker_process`] with segment checkpointing and resume — the
/// worker half of the cross-process recovery protocol.
pub fn train_worker_process_recoverable(
    ep: Arc<dyn Transport>,
    sched: &Schedule,
    cfg: ModelConfig,
    opts: TrainOptions,
    w: u32,
    recovery: Option<&RecoverySpec>,
) -> Result<Option<DistOutcome>, TrainError> {
    let d = sched.d;
    let per_group = sched.num_workers() as u32;
    assert_eq!(
        ep.world(),
        per_group * w,
        "fabric size must be W·D (group-major)"
    );
    let rank = ep.rank();
    let group = rank / per_group;
    let lw = rank % per_group;
    let wid = WorkerId(lw);

    let kind = opts.optimizer_kind();
    let canon_stages = Stage::build_all(cfg, d);

    // Fresh state at iteration 0…
    let mut stages: Vec<(u32, u32, Stage, Optimizer)> = sched
        .placement
        .held_by(wid)
        .into_iter()
        .map(|(r, s)| {
            let stage = canon_stages[s.0 as usize].clone();
            let opt = Optimizer::new(kind, stage.num_params());
            (r.0, s.0, stage, opt)
        })
        .collect();
    let mut losses: Vec<(u64, f32)> = Vec::new();
    let mut done: u32 = 0;

    // …unless resuming from the newest checkpoint committed by ALL ranks
    // (ranks that got further before the crash roll back with everyone).
    if let Some(rec) = recovery.filter(|r| r.resume) {
        if let Some(seg) = latest_committed(&rec.dir, ep.world()) {
            let (ck_losses, ck_stages) =
                load_rank_ckpt(&rank_ckpt_path(&rec.dir, rank, seg), kind, &stages)
                    .map_err(TrainError::Checkpoint)?;
            losses = ck_losses;
            stages = ck_stages;
            done = seg;
        }
    }

    let timeout = opts.recv_timeout;
    let iterations = opts.iterations;

    while done < iterations {
        let len = match recovery {
            Some(rec) if rec.every > 0 => rec.every.min(iterations - done),
            _ => iterations - done,
        };
        let seg = SegmentSpec {
            start_iter: done,
            iterations: len,
            // W never degrades across process boundaries (the supervisor
            // gang-restarts at full strength), so the cursor is derivable.
            micro_base: done as u64 * sched.n as u64 * w as u64,
        };
        // One keyed-ordered allreduce group per held stage, spanning every
        // data-parallel group's holders in (group, holder) member order —
        // the exact order the in-process runtime assigns, so the
        // key-ordered sum is bitwise identical. Rebuilt per segment so a
        // replayed segment restarts its rounds from zero on every rank.
        let mut sync: HashMap<u32, Box<dyn KeyedReduce>> = HashMap::new();
        for s in 0..d {
            let holders = sched.placement.stage_holders(StageId(s));
            if !holders.contains(&wid) {
                continue;
            }
            let mut members: Vec<Rank> = Vec::with_capacity(holders.len() * w as usize);
            for g in 0..w {
                for h in &holders {
                    members.push(g * per_group + h.0);
                }
            }
            sync.insert(
                s,
                Box::new(TransportKeyed::new(ep.clone(), s, members)) as _,
            );
        }
        let worker = Worker::new(
            wid,
            d,
            group,
            w,
            sched.n,
            sched.workers[lw as usize].clone(),
            sched.placement.clone(),
            stages,
            sync,
            ep.clone(),
            SyntheticData::new(cfg, opts.data_seed),
            opts.clone(),
            seg,
            Vec::new(),
            sched.flushes,
        );
        let result = worker.run().map_err(escalate)?;
        losses.extend(result.losses);
        stages = result.stages;
        done += len;
        if let Some(rec) = recovery {
            save_rank_ckpt(
                &rank_ckpt_path(&rec.dir, rank, done),
                rank,
                &losses,
                &stages,
            )
            .map_err(TrainError::Checkpoint)?;
        }
    }
    let result_losses = losses;
    let result_stages = stages;

    if rank != 0 {
        // Ship this worker's slice to rank 0. A failed send means rank 0 is
        // gone; there is nobody left to report to, so exit quietly.
        let _ = ep.send(
            0,
            MsgKey::Ctrl {
                tag: LOSS_TAG,
                from: rank,
            },
            Payload::Losses(result_losses),
        );
        for (r, s, stage, _) in result_stages {
            let _ = ep.send(
                0,
                MsgKey::Ctrl {
                    tag: stage_tag(r, s),
                    from: rank,
                },
                Payload::Flat(stage.params()),
            );
        }
        return Ok(None);
    }

    // Rank 0: gather losses and every (replica, stage) parameter copy.
    let mut losses = result_losses;
    for from in 1..ep.world() {
        let key = MsgKey::Ctrl {
            tag: LOSS_TAG,
            from,
        };
        let payload = ep
            .recv_deadline(key, timeout)
            .map_err(|_| gather_timeout(iterations, key, timeout))?;
        losses.extend(payload.into_losses());
    }
    losses.sort_unstable_by_key(|&(g, _)| g);

    let mut replica_params: HashMap<u32, Vec<Vec<f32>>> = HashMap::new();
    for (_, s, stage, _) in &result_stages {
        replica_params.entry(*s).or_default().push(stage.params());
    }
    for from in 1..ep.world() {
        let peer = WorkerId(from % per_group);
        for (r, s) in sched.placement.held_by(peer) {
            let key = MsgKey::Ctrl {
                tag: stage_tag(r.0, s.0),
                from,
            };
            let payload = ep
                .recv_deadline(key, timeout)
                .map_err(|_| gather_timeout(iterations, key, timeout))?;
            replica_params
                .entry(s.0)
                .or_default()
                .push(payload.into_flat());
        }
    }

    // Verify all 2f·W replica copies of each stage agree bit-for-bit, then
    // deduplicate — same contract as the in-process supervisor.
    let mut flat_params = Vec::new();
    for s in 0..d {
        let copies = replica_params
            .remove(&s)
            .ok_or(TrainError::MissingStage { stage: s })?;
        let (canonical, rest) = copies.split_first().expect("at least one replica");
        if rest.iter().any(|c| c != canonical) {
            return Err(TrainError::ReplicaDivergence { stage: s });
        }
        flat_params.extend_from_slice(canonical);
    }

    let per = sched.n as usize * w as usize;
    let iteration_losses = (0..iterations as usize)
        .map(|i| {
            let slice = &losses[i * per..(i + 1) * per];
            (slice.iter().map(|&(_, l)| l as f64).sum::<f64>() / per as f64) as f32
        })
        .collect();
    Ok(Some(DistOutcome {
        iteration_losses,
        flat_params,
    }))
}

/// Magic for per-rank segment checkpoints (`b"CHPR"`, little-endian).
const RANK_CKPT_MAGIC: u32 = u32::from_le_bytes(*b"CHPR");
const RANK_CKPT_VERSION: u32 = 1;

/// `dir/rank{r}.seg{k}.ckpt` — rank `r`'s state after `k` committed
/// global iterations.
fn rank_ckpt_path(dir: &Path, rank: Rank, seg: u32) -> PathBuf {
    dir.join(format!("rank{rank}.seg{seg}.ckpt"))
}

/// Newest segment for which **every** rank's checkpoint exists — the
/// commit rule that keeps a gang-restart consistent when some ranks died
/// between finishing a segment and persisting it.
pub fn latest_committed(dir: &Path, world: u32) -> Option<u32> {
    let entries = std::fs::read_dir(dir).ok()?;
    // seg -> how many ranks have it
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("rank") else {
            continue;
        };
        let Some(rest) = rest.strip_suffix(".ckpt") else {
            continue;
        };
        let Some((r, s)) = rest.split_once(".seg") else {
            continue;
        };
        let (Ok(r), Ok(s)) = (r.parse::<u32>(), s.parse::<u32>()) else {
            continue;
        };
        if r < world {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, n)| n >= world)
        .map(|(s, _)| s)
        .max()
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    put_u64(buf, vs.len() as u64);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn bytes(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.0.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u64()? as usize;
        let raw = self.bytes(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Atomically persist one rank's segment state: its loss log plus, per
/// held `(replica, stage)`: parameters and optimizer moments.
fn save_rank_ckpt(
    path: &Path,
    rank: Rank,
    losses: &[(u64, f32)],
    stages: &[(u32, u32, Stage, Optimizer)],
) -> Result<(), CheckpointError> {
    let mut buf = Vec::new();
    put_u32(&mut buf, RANK_CKPT_MAGIC);
    put_u32(&mut buf, RANK_CKPT_VERSION);
    put_u32(&mut buf, rank);
    put_u64(&mut buf, losses.len() as u64);
    for &(g, l) in losses {
        put_u64(&mut buf, g);
        put_u32(&mut buf, l.to_bits());
    }
    put_u32(&mut buf, stages.len() as u32);
    for (r, s, stage, opt) in stages {
        put_u32(&mut buf, *r);
        put_u32(&mut buf, *s);
        put_f32s(&mut buf, &stage.params());
        let (m, v, t) = opt.state();
        put_u64(&mut buf, t);
        put_f32s(&mut buf, m);
        put_f32s(&mut buf, v);
    }
    let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, &buf).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// One rank's decoded segment checkpoint: the `(iteration, loss)` log plus
/// the rank's owned `(replica, stage)` entries with their optimizer state.
type RankCkpt = (Vec<(u64, f32)>, Vec<(u32, u32, Stage, Optimizer)>);

/// Restore one rank's segment state. `template` fixes which
/// `(replica, stage)` entries (and parameter shapes) this rank must hold;
/// a checkpoint disagreeing with it is rejected rather than trusted.
fn load_rank_ckpt(
    path: &Path,
    kind: chimera_nn::OptimizerKind,
    template: &[(u32, u32, Stage, Optimizer)],
) -> Result<RankCkpt, CheckpointError> {
    let raw =
        std::fs::read(path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    let mut rd = Reader(&raw);
    if rd.u32()? != RANK_CKPT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = rd.u32()?;
    if version != RANK_CKPT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let _rank = rd.u32()?;
    let n_losses = rd.u64()? as usize;
    let mut losses = Vec::with_capacity(n_losses);
    for _ in 0..n_losses {
        let g = rd.u64()?;
        let l = f32::from_bits(rd.u32()?);
        losses.push((g, l));
    }
    let n_stages = rd.u32()? as usize;
    if n_stages != template.len() {
        return Err(CheckpointError::ShapeMismatch {
            expected: template.len(),
            got: n_stages,
        });
    }
    let mut out = Vec::with_capacity(n_stages);
    for (er, es, estage, _) in template {
        let r = rd.u32()?;
        let s = rd.u32()?;
        if (r, s) != (*er, *es) {
            return Err(CheckpointError::BadMagic);
        }
        let params = rd.f32s()?;
        if params.len() != estage.num_params() {
            return Err(CheckpointError::ShapeMismatch {
                expected: estage.num_params(),
                got: params.len(),
            });
        }
        let t = rd.u64()?;
        let m = rd.f32s()?;
        let v = rd.f32s()?;
        let mut stage = estage.clone();
        stage.set_params(&params);
        out.push((r, s, stage, Optimizer::from_state(kind, m, v, t)));
    }
    if !rd.0.is_empty() {
        return Err(CheckpointError::Truncated);
    }
    Ok((losses, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::train_hybrid;
    use chimera_comm::LocalFabric;
    use chimera_core::chimera::{chimera, ChimeraConfig};
    use std::thread;

    fn opts(iterations: u32) -> TrainOptions {
        TrainOptions {
            micro_batch: 2,
            iterations,
            lr: 0.05,
            momentum: 0.9,
            data_seed: 11,
            ..TrainOptions::default()
        }
    }

    /// Every rank in its own "process" (thread + its own endpoint of a
    /// local fabric, no shared state beyond the transport): the distributed
    /// path must be bit-identical to the in-process supervisor.
    #[test]
    fn distributed_run_matches_in_process_bitwise() {
        let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
        let cfg = ModelConfig::tiny();
        let w = 2u32;
        let world = sched.num_workers() as u32 * w;

        let handles: Vec<_> = LocalFabric::new(world)
            .into_iter()
            .map(|e| {
                let sched = sched.clone();
                thread::spawn(move || {
                    train_worker_process(Arc::new(e), &sched, cfg, opts(3), w).unwrap()
                })
            })
            .collect();
        let mut outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let dist = outcomes.remove(0).expect("rank 0 assembles the outcome");
        assert!(outcomes.iter().all(Option::is_none));

        let reference = train_hybrid(&sched, cfg, opts(3), w).unwrap();
        let dist_bits: Vec<u32> = dist.flat_params.iter().map(|f| f.to_bits()).collect();
        let ref_bits: Vec<u32> = reference
            .flat_params()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(dist_bits, ref_bits);
        assert_eq!(dist.iteration_losses.len(), 3);
        for (a, b) in dist
            .iteration_losses
            .iter()
            .zip(&reference.iteration_losses)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The cross-process recovery protocol end to end, minus the process
    /// spawning: run 1 loses a rank mid-training (everyone else errors out
    /// against the dead peer), then the whole gang restarts with `resume`
    /// — exactly what `chimera-cli launch` does with real processes — and
    /// the recovered run's output is bit-identical to an undisturbed one.
    #[test]
    fn gang_restart_from_committed_segments_is_bitwise_identical() {
        use crate::fault::{FaultSpec, KillFault};

        let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
        let cfg = ModelConfig::tiny();
        let w = 2u32;
        let world = sched.num_workers() as u32 * w;
        let dir = std::env::temp_dir().join(format!(
            "chimera-gang-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // Round 1: rank 0 (group 0, worker 0) dies at iteration 3 — inside
        // the second 2-iteration segment. Everyone fails fast.
        let mut round1 = opts(4);
        round1.recv_timeout = Duration::from_millis(300);
        round1.fault = Some(FaultSpec {
            kill: Some(KillFault {
                group: 0,
                worker: 0,
                iteration: 3,
            }),
            ..FaultSpec::default()
        });
        let rec = |resume| RecoverySpec {
            dir: dir.clone(),
            every: 2,
            resume,
        };
        let handles: Vec<_> = LocalFabric::new(world)
            .into_iter()
            .map(|e| {
                let sched = sched.clone();
                let opts = round1.clone();
                let rec = rec(false);
                let dying = e.rank() == 0;
                thread::spawn(move || {
                    let got = train_worker_process_recoverable(
                        Arc::new(e),
                        &sched,
                        cfg,
                        opts,
                        w,
                        Some(&rec),
                    );
                    (dying, got)
                })
            })
            .collect();
        for h in handles {
            let (dying, got) = h.join().unwrap();
            let err = got.expect_err("round 1 must fail on every rank");
            if dying {
                assert!(
                    matches!(err, TrainError::WorkerLost { .. }),
                    "killed rank reports itself lost, got {err}"
                );
            }
        }
        // The crash left segment 1 (iterations 0..2) committed by all ranks.
        assert_eq!(latest_committed(&dir, world), Some(2));

        // Round 2: gang restart, no fault, resume from the committed
        // segment — the supervisor's respawn path.
        let handles: Vec<_> = LocalFabric::new(world)
            .into_iter()
            .map(|e| {
                let sched = sched.clone();
                let rec = rec(true);
                thread::spawn(move || {
                    train_worker_process_recoverable(
                        Arc::new(e),
                        &sched,
                        cfg,
                        opts(4),
                        w,
                        Some(&rec),
                    )
                    .unwrap()
                })
            })
            .collect();
        let mut outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let recovered = outcomes.remove(0).expect("rank 0 assembles the outcome");

        let reference = train_hybrid(&sched, cfg, opts(4), w).unwrap();
        let rec_bits: Vec<u32> = recovered.flat_params.iter().map(|f| f.to_bits()).collect();
        let ref_bits: Vec<u32> = reference
            .flat_params()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(rec_bits, ref_bits, "recovered run diverged from reference");
        assert_eq!(recovered.iteration_losses.len(), 4);
        for (a, b) in recovered
            .iteration_losses
            .iter()
            .zip(&reference.iteration_losses)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
