//! Communication-matching lint: prove the keyed-inbox transport semantics of
//! `chimera-comm` are sufficient for a schedule.
//!
//! Every cross-worker data dependency is lowered to messages in *half-micro*
//! units (so §3.5's backward-halving chunks compare against full backwards):
//! a forward at stage `s` sends both halves of each covered micro's output
//! activation to stage `s+1`'s holder; a backward at stage `s` sends the
//! covered halves of the input gradient to stage `s-1`'s holder. The lint
//! checks, per channel `(src, dst)`:
//!
//! - **bijection** — each recv matches exactly one send with the same
//!   `(direction, replica, consumer stage, micro, half)` and vice versa
//!   (`unmatched_recv`, `duplicate_send`, `duplicate_recv`,
//!   `unconsumed_send`);
//! - **ordering** — the runtime `MsgKey` carries no half index, so two half
//!   messages from *different* producer ops that share a coarse key must be
//!   consumed in send order or the inbox silently delivers the wrong payload
//!   (`misordered_channel`);
//! - **bounded parking** — an upper bound on messages parked in the
//!   receiver's inbox, reported per channel (see
//!   [`crate::ChannelStats::max_parked`]).

use std::collections::HashMap;

use chimera_core::ids::StageId;
use chimera_core::op::{Chunk, OpKind};
use chimera_core::schedule::Schedule;

use crate::{ChannelStats, Diagnostic, OpLoc, Severity};

/// Message direction, mirroring the runtime's `MsgKey::Act` / `MsgKey::Grad`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Dir {
    Act,
    Grad,
}

/// Full message identity: direction, replica, *consumer* stage, micro, half.
/// The runtime's coarse `MsgKey` is this without the half.
type Key = (Dir, u32, u32, u32, u8);

#[derive(Debug, Clone, Copy)]
struct Event {
    key: Key,
    /// Producer (for sends) or consumer (for recvs) op location.
    worker: usize,
    op_index: usize,
    /// Position in the channel's send/recv order.
    seq: usize,
}

/// Lint outcome: diagnostics plus per-channel statistics.
pub struct CommLint {
    /// Findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-channel stats, sorted by `(src, dst)`.
    pub channels: Vec<ChannelStats>,
}

fn fmt_key(k: Key) -> String {
    let (dir, r, s, m, h) = k;
    let d = match dir {
        Dir::Act => "act",
        Dir::Grad => "grad",
    };
    format!("{d} m{m}.{h}@s{s}/r{r}")
}

/// Run the communication lint on `sched`.
pub fn lint(sched: &Schedule) -> CommLint {
    // channel (src, dst) -> ordered send / recv event lists.
    let mut sends: HashMap<(usize, usize), Vec<Event>> = HashMap::new();
    let mut recvs: HashMap<(usize, usize), Vec<Event>> = HashMap::new();

    for (w, ops) in sched.workers.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            let halves: &[u8] = match op.chunk {
                Chunk::Half(h) => std::slice::from_ref(if h == 0 { &0 } else { &1 }),
                _ => &[0, 1],
            };
            match op.kind {
                OpKind::Forward => {
                    // Send activations downstream.
                    if op.stage.0 + 1 < sched.d {
                        let consumer = StageId(op.stage.0 + 1);
                        let dst = sched.placement.worker(op.replica, consumer).idx();
                        if dst != w {
                            for m in op.covered_micros() {
                                for &h in halves {
                                    push(
                                        &mut sends,
                                        (w, dst),
                                        (Dir::Act, op.replica.0, consumer.0, m.0, h),
                                        w,
                                        i,
                                    );
                                }
                            }
                        }
                    }
                    // Receive the previous stage's activations.
                    if op.stage.0 > 0 {
                        let src = sched
                            .placement
                            .worker(op.replica, StageId(op.stage.0 - 1))
                            .idx();
                        if src != w {
                            for m in op.covered_micros() {
                                for &h in halves {
                                    push(
                                        &mut recvs,
                                        (src, w),
                                        (Dir::Act, op.replica.0, op.stage.0, m.0, h),
                                        w,
                                        i,
                                    );
                                }
                            }
                        }
                    }
                }
                OpKind::Backward { .. } => {
                    // Send input gradients upstream.
                    if op.stage.0 > 0 {
                        let consumer = StageId(op.stage.0 - 1);
                        let dst = sched.placement.worker(op.replica, consumer).idx();
                        if dst != w {
                            for m in op.covered_micros() {
                                for &h in halves {
                                    push(
                                        &mut sends,
                                        (w, dst),
                                        (Dir::Grad, op.replica.0, consumer.0, m.0, h),
                                        w,
                                        i,
                                    );
                                }
                            }
                        }
                    }
                    // Receive the next stage's output gradient.
                    if op.stage.0 + 1 < sched.d {
                        let src = sched
                            .placement
                            .worker(op.replica, StageId(op.stage.0 + 1))
                            .idx();
                        if src != w {
                            for m in op.covered_micros() {
                                for &h in halves {
                                    push(
                                        &mut recvs,
                                        (src, w),
                                        (Dir::Grad, op.replica.0, op.stage.0, m.0, h),
                                        w,
                                        i,
                                    );
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut diagnostics = Vec::new();
    let mut channels = Vec::new();
    let mut keys: Vec<(usize, usize)> = sends.keys().chain(recvs.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();

    for ch in keys {
        let empty = Vec::new();
        let s = sends.get(&ch).unwrap_or(&empty);
        let r = recvs.get(&ch).unwrap_or(&empty);
        let mut by_key_send: HashMap<Key, Vec<&Event>> = HashMap::new();
        for e in s {
            by_key_send.entry(e.key).or_default().push(e);
        }
        let mut by_key_recv: HashMap<Key, Vec<&Event>> = HashMap::new();
        for e in r {
            by_key_recv.entry(e.key).or_default().push(e);
        }

        for (key, rs) in sorted(&by_key_recv) {
            if rs.len() > 1 {
                diagnostics.push(Diagnostic {
                    code: "duplicate_recv",
                    severity: Severity::Error,
                    message: format!(
                        "P{} receives {} from P{} {} times",
                        ch.1,
                        fmt_key(key),
                        ch.0,
                        rs.len()
                    ),
                    locations: locs(sched, rs),
                });
            }
            if !by_key_send.contains_key(&key) {
                diagnostics.push(Diagnostic {
                    code: "unmatched_recv",
                    severity: Severity::Error,
                    message: format!(
                        "P{} expects {} from P{}, but P{} never sends it on this channel",
                        ch.1,
                        fmt_key(key),
                        ch.0,
                        ch.0
                    ),
                    locations: locs(sched, rs),
                });
            }
        }
        for (key, ss) in sorted(&by_key_send) {
            if ss.len() > 1 {
                diagnostics.push(Diagnostic {
                    code: "duplicate_send",
                    severity: Severity::Error,
                    message: format!(
                        "P{} sends {} to P{} {} times",
                        ch.0,
                        fmt_key(key),
                        ch.1,
                        ss.len()
                    ),
                    locations: locs(sched, ss),
                });
            }
            if !by_key_recv.contains_key(&key) {
                diagnostics.push(Diagnostic {
                    code: "unconsumed_send",
                    severity: Severity::Warning,
                    message: format!(
                        "P{} sends {} to P{}, but no op on P{} receives it",
                        ch.0,
                        fmt_key(key),
                        ch.1,
                        ch.1
                    ),
                    locations: locs(sched, ss),
                });
            }
        }

        // Ordering under the coarse runtime key (no half index): halves of
        // one micro produced by *different* ops must be consumed in send
        // order, or the inbox hands the consumer the wrong half's payload.
        let mut coarse_send: HashMap<(Dir, u32, u32, u32), Vec<&Event>> = HashMap::new();
        for e in s {
            let (d, r_, s_, m, _) = e.key;
            coarse_send.entry((d, r_, s_, m)).or_default().push(e);
        }
        let mut coarse_recv: HashMap<(Dir, u32, u32, u32), Vec<&Event>> = HashMap::new();
        for e in r {
            let (d, r_, s_, m, _) = e.key;
            coarse_recv.entry((d, r_, s_, m)).or_default().push(e);
        }
        for (coarse, ss) in sorted(&coarse_send) {
            let Some(rs) = coarse_recv.get(&coarse) else {
                continue;
            };
            // Same producer op ⇒ one runtime message; nothing to misorder.
            if ss.len() < 2
                || ss
                    .iter()
                    .all(|e| e.op_index == ss[0].op_index && e.worker == ss[0].worker)
            {
                continue;
            }
            let send_halves: Vec<u8> = ss.iter().map(|e| e.key.4).collect();
            let recv_halves: Vec<u8> = rs.iter().map(|e| e.key.4).collect();
            if send_halves != recv_halves {
                let mut locations = locs(sched, ss);
                locations.extend(locs(sched, rs));
                diagnostics.push(Diagnostic {
                    code: "misordered_channel",
                    severity: Severity::Error,
                    message: format!(
                        "halves of {} travel P{}->P{} in send order {send_halves:?} but are \
                         consumed in order {recv_halves:?}; the runtime MsgKey does not carry \
                         the half index, so the inbox would deliver the wrong payload",
                        fmt_key((coarse.0, coarse.1, coarse.2, coarse.3, 0)),
                        ch.0,
                        ch.1
                    ),
                    locations,
                });
            }
        }

        // Parking bound: match each recv (in consumer order) to its send's
        // channel position; the k-th recv matching the p-th send parks at
        // most p - k messages.
        let send_pos: HashMap<Key, usize> = s.iter().map(|e| (e.key, e.seq)).collect();
        let mut max_parked = 0usize;
        let mut matched = 0usize;
        for e in r {
            if let Some(&p) = send_pos.get(&e.key) {
                max_parked = max_parked.max(p.saturating_sub(e.seq));
                matched += 1;
            }
        }
        channels.push(ChannelStats {
            src: ch.0 as u32,
            dst: ch.1 as u32,
            messages: matched,
            max_parked,
        });
    }

    CommLint {
        diagnostics,
        channels,
    }
}

fn push(
    map: &mut HashMap<(usize, usize), Vec<Event>>,
    ch: (usize, usize),
    key: Key,
    worker: usize,
    op_index: usize,
) {
    let list = map.entry(ch).or_default();
    let seq = list.len();
    list.push(Event {
        key,
        worker,
        op_index,
        seq,
    });
}

fn locs(sched: &Schedule, events: &[&Event]) -> Vec<OpLoc> {
    let mut out: Vec<OpLoc> = events
        .iter()
        .map(|e| OpLoc::of(sched, e.worker, e.op_index))
        .collect();
    out.dedup();
    out
}

fn sorted<K: Copy + Ord, V>(map: &HashMap<K, V>) -> Vec<(K, &V)> {
    let mut v: Vec<(K, &V)> = map.iter().map(|(k, val)| (*k, val)).collect();
    v.sort_by_key(|&(k, _)| k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_core::baselines::{dapple, gpipe};
    use chimera_core::chimera::{chimera, ChimeraConfig};

    #[test]
    fn clean_schedules_have_no_findings() {
        for s in [gpipe(4, 8), dapple(4, 8)] {
            let l = lint(&s);
            assert!(l.diagnostics.is_empty(), "{:?}", l.diagnostics);
        }
        let l = lint(&chimera(&ChimeraConfig::new(4, 8)).unwrap());
        assert!(l.diagnostics.is_empty(), "{:?}", l.diagnostics);
    }

    #[test]
    fn gpipe_linear_channels_are_neighbors_only() {
        let l = lint(&gpipe(4, 4));
        for c in &l.channels {
            assert_eq!(
                (c.src as i64 - c.dst as i64).abs(),
                1,
                "linear pipeline only talks to neighbors"
            );
            assert!(c.messages > 0);
        }
    }

    #[test]
    fn dropped_send_is_unmatched_recv() {
        let mut s = gpipe(2, 2);
        // Remove F(m1)@s0: worker 1 still expects its activation.
        s.workers[0].remove(1);
        let l = lint(&s);
        assert!(
            l.diagnostics.iter().any(|d| d.code == "unmatched_recv"),
            "{:?}",
            l.diagnostics
        );
    }

    #[test]
    fn dropped_recv_is_unconsumed_send_warning() {
        let mut s = gpipe(2, 2);
        // Remove F(m1)@s1: worker 0's activation send has no consumer.
        s.workers[1].remove(1);
        let l = lint(&s);
        let d = l
            .diagnostics
            .iter()
            .find(|d| d.code == "unconsumed_send")
            .expect("unconsumed send");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn duplicated_forward_is_duplicate_send() {
        let mut s = gpipe(2, 2);
        let dup = s.workers[0][0];
        s.workers[0].insert(1, dup);
        let l = lint(&s);
        assert!(l.diagnostics.iter().any(|d| d.code == "duplicate_send"));
    }

    #[test]
    fn inverted_halves_are_misordered() {
        // Stage 1 produces gradient halves in order [0, 1]; stage 0 consumes
        // them as [1, 0]. The dynamic executor accepts this (both halves
        // exist when needed) — but the runtime's coarse MsgKey would deliver
        // half 0's payload to the half-1 recv. Only the static lint sees it.
        use chimera_core::ids::{MicroId, ReplicaId, StageId};
        use chimera_core::op::{Chunk, Op, OpKind};
        use chimera_core::placement::Placement;
        use chimera_core::schedule::{Schedule, Scheme, SyncStrategy};
        use chimera_core::unit_time::{execute, UnitCosts};
        let half = |h, s| Op {
            kind: OpKind::Backward { recompute: false },
            micro: MicroId(0),
            stage: StageId(s),
            replica: ReplicaId(0),
            chunk: Chunk::Half(h),
        };
        let s = Schedule {
            scheme: Scheme::Chimera,
            d: 2,
            n: 1,
            placement: Placement::linear(2),
            workers: vec![
                vec![
                    Op::forward(MicroId(0), StageId(0), ReplicaId(0)),
                    half(1, 0),
                    half(0, 0),
                ],
                vec![
                    Op::forward(MicroId(0), StageId(1), ReplicaId(0)),
                    half(0, 1),
                    half(1, 1),
                ],
            ],
            flushes: true,
            sync: SyncStrategy::None,
        };
        assert!(execute(&s, UnitCosts::equal()).is_ok(), "dynamically fine");
        let l = lint(&s);
        let d = l
            .diagnostics
            .iter()
            .find(|d| d.code == "misordered_channel")
            .expect("misordered channel");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("[0, 1]") && d.message.contains("[1, 0]"));
    }

    #[test]
    fn parking_bound_is_finite_and_small_for_builtin_schemes() {
        for s in [gpipe(8, 16), dapple(8, 16)] {
            let l = lint(&s);
            for c in &l.channels {
                assert!(
                    c.max_parked <= s.n as usize,
                    "{}->{} parks {}",
                    c.src,
                    c.dst,
                    c.max_parked
                );
            }
        }
    }
}
