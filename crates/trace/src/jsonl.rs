//! Compact JSONL event-log export: one JSON object per line, in timestamp
//! order. Easier to post-process with standard tools than the Chrome format,
//! and streamable.

use std::io::{self, Write};
use std::path::Path;

use crate::event::Event;

/// Render `events` as JSONL text (events are written in the order given;
/// sort beforehand if needed).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Write `events` as JSONL to `writer`.
pub fn write_jsonl_to(writer: &mut impl Write, events: &[Event]) -> io::Result<()> {
    for ev in events {
        writeln!(writer, "{}", ev.to_json())?;
    }
    Ok(())
}

/// Write `events` as JSONL to `path`.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    std::fs::write(path, events_to_jsonl(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanEvent, SpanKind};

    #[test]
    fn one_parseable_object_per_line() {
        let events: Vec<Event> = (0..3)
            .map(|i| {
                Event::Span(SpanEvent {
                    kind: SpanKind::Forward,
                    name: format!("f{i}"),
                    pid: 0,
                    track: i,
                    start_ns: i as u64 * 10,
                    dur_ns: 5,
                    stage: Some(i),
                    replica: None,
                    micro: None,
                })
            })
            .collect();
        let text = events_to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["type"], serde_json::json!("span"));
            assert_eq!(v["track"], serde_json::json!(i));
        }
    }
}
