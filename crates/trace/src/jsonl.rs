//! Compact JSONL event-log export: one JSON object per line, in timestamp
//! order. Easier to post-process with standard tools than the Chrome format,
//! and streamable.

use std::io::{self, Write};
use std::path::Path;

use crate::event::Event;

/// Render `events` as JSONL text (events are written in the order given;
/// sort beforehand if needed).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Write `events` as JSONL to `writer`.
pub fn write_jsonl_to(writer: &mut impl Write, events: &[Event]) -> io::Result<()> {
    for ev in events {
        writeln!(writer, "{}", ev.to_json())?;
    }
    Ok(())
}

/// Write `events` as JSONL to `path`.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    std::fs::write(path, events_to_jsonl(events))
}

/// Parse JSONL text back into events.
///
/// Blank lines and lines that are valid JSON but not recognizable events
/// (foreign `type`s, unknown span kinds) are skipped, so logs with mixed
/// content still load. A line that fails to parse as JSON at all is an
/// error — it means the file is truncated or not a JSONL event log.
pub fn parse_jsonl(text: &str) -> io::Result<Vec<Event>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = serde_json::from_str(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: not JSON: {e}", i + 1),
            )
        })?;
        if let Some(ev) = Event::from_json(&v) {
            out.push(ev);
        }
    }
    Ok(out)
}

/// Read a JSONL event log from `path`.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<Event>> {
    parse_jsonl(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanEvent, SpanKind};

    #[test]
    fn one_parseable_object_per_line() {
        let events: Vec<Event> = (0..3)
            .map(|i| {
                Event::Span(SpanEvent {
                    kind: SpanKind::Forward,
                    name: format!("f{i}"),
                    pid: 0,
                    track: i,
                    start_ns: i as u64 * 10,
                    dur_ns: 5,
                    stage: Some(i),
                    replica: None,
                    micro: None,
                    bytes: (i == 0).then_some(128),
                })
            })
            .collect();
        let text = events_to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["type"], serde_json::json!("span"));
            assert_eq!(v["track"], serde_json::json!(i));
        }
    }

    #[test]
    fn text_parses_back_to_identical_events() {
        let events: Vec<Event> = (0..3)
            .map(|i| {
                Event::Span(SpanEvent {
                    kind: SpanKind::Backward,
                    name: format!("b{i}"),
                    pid: 0,
                    track: i,
                    start_ns: i as u64 * 10,
                    dur_ns: 5,
                    stage: Some(i),
                    replica: Some(1),
                    micro: Some(i as u64),
                    bytes: None,
                })
            })
            .collect();
        let parsed = parse_jsonl(&events_to_jsonl(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn foreign_and_blank_lines_are_skipped_garbage_is_an_error() {
        let text = "\n{\"type\":\"unknown\",\"x\":1}\n\
                    {\"type\":\"counter\",\"name\":\"c\",\"pid\":0,\"track\":1,\"ts_ns\":5,\"value\":2.5}\n";
        let parsed = parse_jsonl(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].location(), (0, 1));
        assert!(parse_jsonl("not json at all").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let events = vec![Event::Span(SpanEvent {
            kind: SpanKind::P2p,
            name: "xfer".into(),
            pid: 2,
            track: 0,
            start_ns: 7,
            dur_ns: 3,
            stage: None,
            replica: None,
            micro: None,
            bytes: Some(1024),
        })];
        let path = std::env::temp_dir().join("chimera_trace_jsonl_roundtrip.jsonl");
        write_jsonl(&path, &events).unwrap();
        let back = read_jsonl(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, events);
    }
}
