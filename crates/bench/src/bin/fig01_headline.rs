//! Figure 1: the headline comparison — GPT-2 on 2,048 GPU nodes with
//! B̂ = 2,048: bubble ratio, memory cost (R = needs activation
//! recomputation), and best throughput per approach. Paper: Chimera improves
//! 1.16x–2.34x over the state of the art.

use chimera_bench::scaling::{best_per_scheme, chimera_speedups};
use chimera_bench::{arg_value, candidate_json, print_table, save_json};
use chimera_core::chimera::ScaleMethod;
use chimera_perf::planner::rebuild;
use chimera_perf::{ClusterSpec, ModelSpec};
use chimera_sim::simulate_span;

fn main() {
    let model = ModelSpec::gpt2();
    let cluster = ClusterSpec::piz_daint();
    let p = 2048u32;
    let b_hat = 2048u64;
    let results = best_per_scheme(model, cluster, p, b_hat, ScaleMethod::Direct);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, c) in &results {
        if let Some(c) = c {
            // Static verification gate: rebuild each winning candidate's
            // exact schedule and require a clean report before publishing
            // its numbers.
            let (sched, _, iters) = rebuild(c, model, cluster).expect("candidate rebuilds");
            let verdict = chimera_verify::verify_span(&sched, iters);
            assert!(
                verdict.is_clean(),
                "{name} best candidate fails static verification:\n{verdict}"
            );
            rows.push(vec![
                name.clone(),
                format!("D={} W={} B={}", c.d, c.w, c.b),
                format!("{:.3}", c.bubble_ratio),
                format!("{:.2} GiB", c.peak_mem as f64 / (1u64 << 30) as f64),
                if c.recompute { "R" } else { "-" }.to_string(),
                format!("{:.0}", c.throughput),
            ]);
            let mut j = candidate_json(c);
            j["label"] = serde_json::json!(name);
            json.push(j);
        } else {
            rows.push(vec![
                name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "OOM".into(),
                "0".into(),
            ]);
        }
    }
    print_table(
        "Fig. 1: GPT-2 on 2,048 nodes, B̂=2,048 — best configuration per approach",
        &[
            "approach",
            "best config",
            "bubble",
            "peak mem",
            "recompute",
            "samples/s",
        ],
        &rows,
    );
    println!();
    for (name, speedup) in chimera_speedups(&results) {
        println!("Chimera speedup over {name}: {speedup:.2}x (paper range: 1.16x-2.34x)");
    }
    save_json("fig01_headline", serde_json::json!(json.clone()));

    // `--trace <path>` / `--json <path>`: re-execute the winning Chimera
    // configuration and export its timeline / full report.
    let trace_path = arg_value("--trace");
    let json_path = arg_value("--json");
    if trace_path.is_none() && json_path.is_none() {
        return;
    }
    let c = results
        .last()
        .and_then(|(_, c)| c.as_ref())
        .expect("Chimera found a fitting configuration");
    let (sched, cost, iters) = rebuild(c, model, cluster).expect("winner rebuilds");
    let report = simulate_span(&sched, &cost, iters).expect("winner simulates");
    let label = format!("{} D={} W={} B={}", c.scheme.label(), c.d, c.w, c.b);
    if let Some(path) = trace_path {
        chimera_trace::write_chrome_trace(&path, &report.to_trace(), &[(0, &label)])
            .expect("write Chrome trace");
        println!("[trace saved to {path} — open in Perfetto or chrome://tracing]");
    }
    if let Some(path) = json_path {
        let report_json = serde_json::to_value(&report).expect("report serializes");
        let breakdown = serde_json::to_value(report.breakdown()).expect("breakdown serializes");
        let doc = serde_json::json!({
            "figure": "fig01_headline",
            "candidates": json,
            "chimera_label": label,
            "chimera_report": report_json,
            "chimera_breakdown": breakdown,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serialize"),
        )
        .expect("write json");
        println!("[report saved to {path}]");
    }
}
