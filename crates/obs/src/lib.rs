//! # chimera-obs — pipeline profiler and live metrics aggregation
//!
//! Observability for Chimera training runs, in three pillars:
//!
//! * **Timeline attribution** ([`timeline`]) — reconstruct per-rank
//!   timelines from a trace event stream and decompose each rank's wall
//!   clock into exclusive categories (compute, comm waits, gradient sync,
//!   fault recovery, bubble). Categories sum to the analysis window by
//!   construction, so the reported bubble ratios are trustworthy.
//! * **Critical path & drift** ([`critical`], [`drift`]) — the longest
//!   dependency chain through the executed spans (the only ops whose
//!   speedup shortens the run), and scale-free predicted-vs-actual drift
//!   against the `chimera-sim` unit-cost model for the same
//!   `(scheme, D, N)`, including α-β comm-model residuals.
//! * **Live aggregation** ([`live`]) — per-rank [`chimera_trace::MetricsRegistry`]
//!   snapshots shipped over the training fabric itself as control
//!   messages to a rank-0 aggregator, exposed as merged JSON and
//!   Prometheus exposition text, optionally over a `std::net` HTTP
//!   endpoint.
//!
//! The [`report`] module combines the offline pillars into one
//! [`ProfileReport`] with a stable JSON schema (`chimera-obs/profile/v1`),
//! surfaced by `chimera-cli profile`.

pub mod critical;
pub mod drift;
pub mod live;
pub mod report;
pub mod timeline;

pub use critical::{critical_path, CriticalOp, CriticalPath};
pub use drift::{
    comm_residuals, drift, drift_with_costs, load_comm_fits, parse_comm_fits, ClassDrift, CommFit,
    CommResiduals, DriftReport,
};
pub use live::{prometheus_text, MetricsAggregator, MetricsPublisher, MetricsServer, METRICS_TAG};
pub use report::{profile, ProfileReport};
pub use timeline::{analyze, Breakdown, Lane, TraceAnalysis};
