//! Quickstart: generate a Chimera schedule, look at it, simulate it, and
//! train a real model with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chimera::core::baselines::dapple;
use chimera::core::chimera::{chimera, ChimeraConfig};
use chimera::core::render;
use chimera::core::schedule::SyncStrategy;
use chimera::core::sync::place_sync;
use chimera::core::unit_time::{execute, UnitCosts};
use chimera::nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera::perf::{ClusterSpec, ModelSpec, TrainConfig};
use chimera::runtime::{train, TrainOptions};
use chimera::sim::simulate;

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's Figure 3/5 schedule: D = 4 stages, N = 4 micro-batches,
    //    two pipelines in opposite directions through the same workers.
    // ------------------------------------------------------------------
    let sched = chimera(&ChimeraConfig::new(4, 4)).expect("valid config");
    println!("Chimera D=4 N=4 (backward = 2x forward):\n");
    let tl = execute(&sched, UnitCosts::practical()).expect("executes");
    println!("{}", render::render(&tl));
    println!("{}\n", render::summary(&tl));

    // Compare with DAPPLE (1F1B + flush): twice the bubbles.
    let tl_dapple = execute(&dapple(4, 4), UnitCosts::practical()).expect("executes");
    println!(
        "bubble ratio: Chimera {:.3} vs DAPPLE {:.3} (Table 2: (D-2)/(3N/2+D-2) vs (D-1)/(N+D-1))\n",
        tl.bubble_ratio(),
        tl_dapple.bubble_ratio()
    );

    // ------------------------------------------------------------------
    // 2. Simulate the schedule as Bert-48 on Piz Daint (P100 + Aries).
    // ------------------------------------------------------------------
    let cost = TrainConfig {
        model: ModelSpec::bert48(),
        cluster: ClusterSpec::piz_daint(),
        d: 4,
        w: 8,
        b: 8,
        stage_replicas: 2,
    }
    .cost_model();
    let synced = place_sync(
        sched.clone(),
        SyncStrategy::EagerOpt,
        UnitCosts::practical(),
    );
    let report = simulate(&synced, &cost).expect("simulates");
    println!(
        "Simulated on 32 P100 nodes (W=8, B=8): {:.3} s/iteration, {:.0} samples/s, peak {:.1} GiB",
        report.iter_time_s,
        report.throughput(8 * 8 * 4),
        report.max_peak_mem() as f64 / (1u64 << 30) as f64
    );

    // ------------------------------------------------------------------
    // 3. Train a real (tiny) GPT-style model with the same schedule, one
    //    thread per worker — and verify the result is bit-identical to
    //    sequential mini-batch SGD.
    // ------------------------------------------------------------------
    let cfg = ModelConfig::tiny();
    let opts = TrainOptions {
        micro_batch: 2,
        iterations: 5,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 42,
        ..TrainOptions::default()
    };
    let result = train(&sched, cfg, opts.clone()).expect("training succeeds");
    println!("\nPipelined training losses: {:?}", result.iteration_losses);

    let mut reference = ReferenceTrainer::new(
        Stage::build_all(cfg, 4),
        SyntheticData::new(cfg, opts.data_seed),
        opts.micro_batch,
        opts.lr,
        opts.momentum,
    );
    for it in 0..opts.iterations {
        reference.train_iteration(it as u64 * sched.n as u64, sched.n);
    }
    assert_eq!(
        result.flat_params(),
        reference.flat_params(),
        "synchronous pipeline must equal sequential SGD bit-for-bit"
    );
    println!("✓ pipelined parameters are bit-identical to sequential mini-batch SGD");
}
