//! Orchestration: spawn one thread per pipeline worker, wire channels and
//! allreduce groups, execute a schedule for several training iterations,
//! and reassemble the model.
//!
//! Supports the paper's hybrid of pipeline and data parallelism (§3.3): the
//! bidirectional pipeline group of `D` workers is replicated `W` times
//! (`P = W·D` threads); point-to-point communication stays within a group,
//! while each stage's gradient allreduce spans all `2f·W` replicas.

use std::collections::HashMap;
use std::thread;

use crossbeam::channel::unbounded;

use chimera_core::schedule::Schedule;
use chimera_core::{StageId, WorkerId};
use chimera_collectives::keyed_group;
use chimera_nn::{ModelConfig, Stage, SyntheticData};

use crate::worker::{TrainOptions, Worker};

/// Outcome of a pipelined training run.
pub struct TrainResult {
    /// Mean loss per iteration.
    pub iteration_losses: Vec<f32>,
    /// The final model as `D` stages (all `2f·W` replica copies verified
    /// identical and deduplicated).
    pub stages: Vec<Stage>,
}

impl TrainResult {
    /// Concatenated flat parameters, comparable with
    /// [`chimera_nn::ReferenceTrainer::flat_params`].
    pub fn flat_params(&self) -> Vec<f32> {
        self.stages.iter().flat_map(Stage::params).collect()
    }
}

/// Execute `sched` on a real `cfg` model with one thread per worker
/// (`W = 1`; see [`train_hybrid`] for data parallelism).
///
/// ```
/// use chimera_core::chimera::{chimera, ChimeraConfig};
/// use chimera_nn::ModelConfig;
/// use chimera_runtime::{train, TrainOptions};
///
/// let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
/// let result = train(
///     &sched,
///     ModelConfig::tiny(),
///     TrainOptions {
///         micro_batch: 1,
///         iterations: 2,
///         ..TrainOptions::default()
///     },
/// );
/// assert_eq!(result.iteration_losses.len(), 2);
/// assert_eq!(result.stages.len(), 2);
/// ```
pub fn train(sched: &Schedule, cfg: ModelConfig, opts: TrainOptions) -> TrainResult {
    train_hybrid(sched, cfg, opts, 1)
}

/// Execute `sched` replicated over `w` data-parallel pipeline groups
/// (`P = w·D` threads). Every stage replica starts from the
/// partition-independent deterministic initialization; gradient
/// synchronization across all `2f·w` replicas of a stage uses the
/// keyed-ordered allreduce, so the result is bit-identical to the sequential
/// reference (which accumulates the same `N·w` micro-batches in ascending
/// order) for synchronous schedules.
///
/// Panics if any two replica copies of a stage diverge — which would
/// indicate a schedule or synchronization bug.
pub fn train_hybrid(sched: &Schedule, cfg: ModelConfig, opts: TrainOptions, w: u32) -> TrainResult {
    assert!(w >= 1);
    let d = sched.d;
    let per_group = sched.num_workers();
    let total_workers = per_group * w as usize;
    let data = SyntheticData::new(cfg, opts.data_seed);

    // Channels: one inbox per global worker (group-major layout).
    let mut txs = Vec::with_capacity(total_workers);
    let mut rxs = Vec::with_capacity(total_workers);
    for _ in 0..total_workers {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    // Allreduce groups: one keyed group per stage spanning every group's
    // holders, ranked (group, holder) for determinism.
    let mut sync_per_worker: Vec<HashMap<u32, _>> =
        (0..total_workers).map(|_| HashMap::new()).collect();
    for s in 0..d {
        let holders = sched.placement.stage_holders(StageId(s));
        let mut members = keyed_group(holders.len() * w as usize);
        members.reverse(); // pop from the front in rank order
        for g in 0..w {
            for h in &holders {
                let global = g as usize * per_group + h.idx();
                sync_per_worker[global].insert(s, members.pop().expect("member per holder"));
            }
        }
    }

    // Spawn workers.
    let mut handles = Vec::with_capacity(total_workers);
    let mut sync_iter = sync_per_worker.into_iter();
    let mut rx_iter = rxs.into_iter();
    for g in 0..w {
        for lw in 0..per_group {
            let wid = WorkerId(lw as u32);
            let rx = rx_iter.next().expect("one inbox per worker");
            let sync = sync_iter.next().expect("sync map per worker");
            let stages: Vec<(u32, u32, Stage)> = sched
                .placement
                .held_by(wid)
                .into_iter()
                .map(|(r, s)| (r.0, s.0, Stage::build(cfg, s.0, d)))
                .collect();
            let worker = Worker::new(
                wid,
                d,
                g,
                w,
                sched.n,
                sched.workers[lw].clone(),
                sched.placement.clone(),
                stages,
                sync,
                rx,
                txs.clone(),
                data,
                opts.clone(),
                sched.flushes,
            );
            handles.push(
                thread::Builder::new()
                    .name(format!("chimera-g{g}-w{lw}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }
    }
    drop(txs);

    // Collect results.
    let mut losses: Vec<(u64, f32)> = Vec::new();
    let mut replica_stages: HashMap<u32, Vec<Stage>> = HashMap::new();
    for h in handles {
        let result = h.join().expect("worker thread panicked");
        losses.extend(result.losses);
        for (_, s, stage) in result.stages {
            replica_stages.entry(s).or_default().push(stage);
        }
    }

    // Verify all 2f·W replica copies of each stage agree bit-for-bit.
    let mut stages = Vec::with_capacity(d as usize);
    for s in 0..d {
        let mut copies = replica_stages.remove(&s).expect("every stage trained");
        let canonical = copies.pop().expect("at least one replica");
        let reference = canonical.params();
        for copy in &copies {
            assert_eq!(
                copy.params(),
                reference,
                "stage {s}: replica copies diverged"
            );
        }
        stages.push(canonical);
    }

    // Mean loss per iteration from per-micro losses.
    losses.sort_unstable_by_key(|&(g, _)| g);
    let n = sched.n as usize * w as usize;
    let mut iteration_losses = Vec::with_capacity(opts.iterations as usize);
    for it in 0..opts.iterations as usize {
        let slice = &losses[it * n..(it + 1) * n];
        let mean = slice.iter().map(|&(_, l)| l as f64).sum::<f64>() / n as f64;
        iteration_losses.push(mean as f32);
    }
    TrainResult {
        iteration_losses,
        stages,
    }
}
