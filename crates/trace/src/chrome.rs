//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` format loadable by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one process (`pid`) per
//! overlaid run, one thread track (`tid`) per worker, complete (`ph: "X"`)
//! events colored by op kind, counter (`ph: "C"`) events, and metadata
//! (`ph: "M"`) events naming every process and track.
//!
//! Timestamps in the format are microseconds; event timestamps are
//! nanoseconds, so they are exported as fractional microseconds.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use crate::event::Event;

/// Build the Chrome trace JSON document for `events`.
///
/// `process_names` labels the process groups used by the events' `pid`
/// fields; unlisted pids get a generic label. Tracks are named
/// `worker <track>` automatically.
pub fn chrome_trace_json(events: &[Event], process_names: &[(u32, &str)]) -> serde_json::Value {
    let mut out: Vec<serde_json::Value> = Vec::with_capacity(events.len() + 16);

    // Metadata: name every (pid) and (pid, track) seen in the stream.
    let locations: BTreeSet<(u32, u32)> = events.iter().map(Event::location).collect();
    let pids: BTreeSet<u32> = locations.iter().map(|&(p, _)| p).collect();
    for pid in &pids {
        let name = process_names
            .iter()
            .find(|(p, _)| p == pid)
            .map(|&(_, n)| n.to_string())
            .unwrap_or_else(|| format!("run {pid}"));
        let args = serde_json::json!({"name": name});
        out.push(serde_json::json!({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": args,
        }));
    }
    for (pid, track) in &locations {
        let args = serde_json::json!({"name": format!("worker {track}")});
        out.push(serde_json::json!({
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": track,
            "args": args,
        }));
    }

    for ev in events {
        match ev {
            Event::Span(s) => {
                let mut args = serde_json::Map::new();
                if let Some(stage) = s.stage {
                    args.insert("stage".into(), serde_json::json!(stage));
                }
                if let Some(replica) = s.replica {
                    args.insert("replica".into(), serde_json::json!(replica));
                }
                if let Some(micro) = s.micro {
                    args.insert("micro".into(), serde_json::json!(micro));
                }
                if let Some(bytes) = s.bytes {
                    args.insert("bytes".into(), serde_json::json!(bytes));
                }
                out.push(serde_json::json!({
                    "ph": "X",
                    "name": s.name,
                    "cat": s.kind.label(),
                    "cname": s.kind.chrome_color(),
                    "pid": s.pid,
                    "tid": s.track,
                    "ts": s.start_ns as f64 / 1e3,
                    "dur": s.dur_ns as f64 / 1e3,
                    "args": serde_json::Value::Object(args),
                }));
            }
            Event::Counter(c) => {
                let mut args = serde_json::Map::new();
                args.insert(c.name.clone(), serde_json::json!(c.value));
                out.push(serde_json::json!({
                    "ph": "C",
                    "name": c.name,
                    "pid": c.pid,
                    "tid": c.track,
                    "ts": c.ts_ns as f64 / 1e3,
                    "args": serde_json::Value::Object(args),
                }));
            }
        }
    }

    serde_json::json!({"traceEvents": out})
}

/// Write the Chrome trace for `events` to `path`.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    events: &[Event],
    process_names: &[(u32, &str)],
) -> io::Result<()> {
    let doc = chrome_trace_json(events, process_names);
    std::fs::write(path, doc.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterEvent, SpanEvent, SpanKind};

    fn span(kind: SpanKind, track: u32, start_ns: u64, dur_ns: u64) -> Event {
        Event::Span(SpanEvent {
            kind,
            name: format!("{}@{track}", kind.label()),
            pid: 0,
            track,
            start_ns,
            dur_ns,
            stage: Some(track),
            replica: Some(0),
            micro: Some(1),
            bytes: None,
        })
    }

    #[test]
    fn document_shape_round_trips() {
        let events = vec![
            span(SpanKind::Forward, 0, 0, 1000),
            span(SpanKind::Backward, 1, 2000, 3000),
            Event::Counter(CounterEvent {
                name: "act_bytes".into(),
                pid: 0,
                track: 0,
                ts_ns: 500,
                value: 42.0,
            }),
        ];
        let doc = chrome_trace_json(&events, &[(0, "demo")]);
        // Round trip through text, as a consumer would.
        let text = serde_json::to_string(&doc).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let list = parsed["traceEvents"].as_array().unwrap();
        // 1 process_name + 2 thread_name + 3 events.
        assert_eq!(list.len(), 6);
        let process = list
            .iter()
            .find(|e| e["name"] == serde_json::json!("process_name"))
            .unwrap();
        assert_eq!(process["args"]["name"], serde_json::json!("demo"));
        let threads: Vec<_> = list
            .iter()
            .filter(|e| e["name"] == serde_json::json!("thread_name"))
            .collect();
        assert_eq!(threads.len(), 2);
        let fwd = list
            .iter()
            .find(|e| e["cat"] == serde_json::json!("forward"))
            .unwrap();
        assert_eq!(fwd["ph"], serde_json::json!("X"));
        assert_eq!(fwd["dur"].as_f64().unwrap(), 1.0); // 1000 ns = 1 µs
        assert_eq!(fwd["args"]["micro"], serde_json::json!(1));
        let counter = list
            .iter()
            .find(|e| e["ph"] == serde_json::json!("C"))
            .unwrap();
        assert_eq!(counter["args"]["act_bytes"].as_f64().unwrap(), 42.0);
    }

    #[test]
    fn file_export_parses_back() {
        let events = vec![span(SpanKind::AllReduce, 0, 0, 10)];
        let path = std::env::temp_dir().join("chimera_trace_chrome_test.json");
        write_chrome_trace(&path, &events, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(parsed["traceEvents"].as_array().unwrap().len() >= 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unlisted_pid_gets_generic_name() {
        let mut ev = span(SpanKind::Forward, 0, 0, 1);
        if let Event::Span(s) = &mut ev {
            s.pid = 7;
        }
        let doc = chrome_trace_json(&[ev], &[]);
        let list = doc["traceEvents"].as_array().unwrap();
        let process = list
            .iter()
            .find(|e| e["name"] == serde_json::json!("process_name"))
            .unwrap();
        assert_eq!(process["args"]["name"], serde_json::json!("run 7"));
    }
}
