//! The executable form of the paper's synchronous-equivalence claim:
//! "synchronous approaches are equivalent to the standard and well-proved
//! mini-batch SGD" (§2, Table 2). Every synchronous schedule — Chimera's
//! bidirectional schedules included — must produce parameters *bit-identical*
//! to a sequential gradient-accumulation reference.

use chimera_core::baselines::{dapple, gems, gpipe};
use chimera_core::chimera::{chimera, ChimeraConfig};
use chimera_core::schedule::{Schedule, SyncStrategy};
use chimera_core::sync::place_sync;
use chimera_core::unit_time::UnitCosts;
use chimera_nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera_runtime::{train, TrainOptions};

fn opts(iterations: u32) -> TrainOptions {
    TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 123,
        ..TrainOptions::default()
    }
}

fn reference(cfg: ModelConfig, d: u32, n: u32, iterations: u32) -> (Vec<f32>, Vec<f32>) {
    let o = opts(iterations);
    let mut r = ReferenceTrainer::new(
        Stage::build_all(cfg, d),
        SyntheticData::new(cfg, o.data_seed),
        o.micro_batch,
        o.lr,
        o.momentum,
    );
    let mut losses = Vec::new();
    for it in 0..iterations {
        losses.push(r.train_iteration(it as u64 * n as u64, n));
    }
    (r.flat_params(), losses)
}

fn assert_equivalent(sched: &Schedule, cfg: ModelConfig, iterations: u32) {
    let result = train(sched, cfg, opts(iterations)).expect("training succeeds");
    let (ref_params, ref_losses) = reference(cfg, sched.d, sched.n, iterations);
    assert_eq!(
        result.flat_params(),
        ref_params,
        "{} D={} N={}: parameters diverged from sequential SGD",
        sched.scheme,
        sched.d,
        sched.n
    );
    for (a, b) in result.iteration_losses.iter().zip(&ref_losses) {
        assert!((a - b).abs() < 1e-6, "loss mismatch: {a} vs {b}");
    }
}

#[test]
fn chimera_d2_bitexact() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    assert_equivalent(&sched, cfg, 3);
}

#[test]
fn chimera_d4_n4_bitexact() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(4, 4)).unwrap();
    assert_equivalent(&sched, cfg, 3);
}

#[test]
fn chimera_d4_n8_direct_concat_bitexact() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(4, 8)).unwrap();
    assert_equivalent(&sched, cfg, 2);
}

#[test]
fn chimera_with_eager_opt_sync_bitexact() {
    let cfg = ModelConfig::tiny();
    let sched = place_sync(
        chimera(&ChimeraConfig::new(4, 4)).unwrap(),
        SyncStrategy::EagerOpt,
        UnitCosts::practical(),
    );
    assert_equivalent(&sched, cfg, 3);
}

#[test]
fn chimera_f2_d4_bitexact() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig {
        d: 4,
        n: 4,
        f: 2,
        scale: chimera_core::ScaleMethod::Direct,
    })
    .unwrap();
    assert_equivalent(&sched, cfg, 2);
}

#[test]
fn chimera_with_recompute_bitexact() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(4, 4)).unwrap().with_recompute();
    assert_equivalent(&sched, cfg, 2);
}

#[test]
fn gpipe_bitexact() {
    let cfg = ModelConfig::tiny();
    assert_equivalent(&gpipe(4, 4), cfg, 2);
}

#[test]
fn dapple_bitexact() {
    let cfg = ModelConfig::tiny();
    assert_equivalent(&dapple(4, 6), cfg, 2);
}

#[test]
fn gems_bitexact() {
    let cfg = ModelConfig::tiny();
    assert_equivalent(&gems(4, 4), cfg, 2);
}

#[test]
fn losses_decrease_under_pipelined_training() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(4, 4)).unwrap();
    let result = train(&sched, cfg, opts(10)).expect("training succeeds");
    let first = result.iteration_losses[0];
    let last = *result.iteration_losses.last().unwrap();
    assert!(last < first, "first {first} last {last}");
}
