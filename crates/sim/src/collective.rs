//! Collective-communication cost models (§3.4).
//!
//! Gradient synchronization uses an allreduce over `r` stage replicas. The
//! paper assumes Rabenseifner's algorithm [42, 53], which is bandwidth
//! optimal for the large messages of model gradients:
//!
//! `T = 2·log2(r)·α + 2·((r-1)/r)·β·L`

use crate::network::LinkParams;

/// Allreduce algorithm whose cost to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllReduceAlgo {
    /// Rabenseifner (reduce-scatter + allgather): bandwidth-optimal
    /// (the paper's assumption).
    #[default]
    Rabenseifner,
    /// Ring allreduce: same bandwidth term, latency linear in `r`.
    Ring,
    /// Flat tree (reduce to root + broadcast): poor bandwidth scaling, shown
    /// for contrast in ablations.
    FlatTree,
}

/// Cost in seconds of an allreduce of `bytes` over `r` participants on links
/// with parameters `link`.
pub fn allreduce_time(algo: AllReduceAlgo, bytes: u64, r: u32, link: LinkParams) -> f64 {
    if r <= 1 || bytes == 0 {
        return 0.0;
    }
    let l = bytes as f64;
    let rf = r as f64;
    match algo {
        AllReduceAlgo::Rabenseifner => {
            2.0 * rf.log2() * link.alpha_s + 2.0 * ((rf - 1.0) / rf) * link.beta_s_per_byte * l
        }
        AllReduceAlgo::Ring => {
            2.0 * (rf - 1.0) * link.alpha_s + 2.0 * ((rf - 1.0) / rf) * link.beta_s_per_byte * l
        }
        AllReduceAlgo::FlatTree => 2.0 * (link.alpha_s + link.beta_s_per_byte * l) * rf.log2(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkParams {
        LinkParams {
            alpha_s: 1e-6,
            beta_s_per_byte: 1e-10,
        }
    }

    #[test]
    fn trivial_cases_are_free() {
        assert_eq!(
            allreduce_time(AllReduceAlgo::Rabenseifner, 1 << 20, 1, link()),
            0.0
        );
        assert_eq!(allreduce_time(AllReduceAlgo::Ring, 0, 8, link()), 0.0);
    }

    #[test]
    fn rabenseifner_formula_exact() {
        // 2 log2(r) α + 2 (r-1)/r β L, r = 4, L = 1e6.
        let t = allreduce_time(AllReduceAlgo::Rabenseifner, 1_000_000, 4, link());
        let expected = 2.0 * 2.0 * 1e-6 + 2.0 * 0.75 * 1e-10 * 1e6;
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
    }

    #[test]
    fn bandwidth_term_saturates_with_r() {
        // The β term approaches 2βL as r → ∞ (lower bound for host-based
        // allreduce).
        let t64 = allreduce_time(AllReduceAlgo::Rabenseifner, 100_000_000, 64, link());
        let bound = 2.0 * 1e-10 * 1e8 + 2.0 * 6.0 * 1e-6;
        assert!(t64 <= bound + 1e-9);
    }

    #[test]
    fn ring_pays_more_latency_for_large_r() {
        let raben = allreduce_time(AllReduceAlgo::Rabenseifner, 1024, 256, link());
        let ring = allreduce_time(AllReduceAlgo::Ring, 1024, 256, link());
        assert!(ring > raben);
    }

    #[test]
    fn flat_tree_worst_bandwidth() {
        let big = 1 << 28;
        let raben = allreduce_time(AllReduceAlgo::Rabenseifner, big, 16, link());
        let tree = allreduce_time(AllReduceAlgo::FlatTree, big, 16, link());
        assert!(tree > raben);
    }

    #[test]
    fn monotone_in_message_size_and_r_latency() {
        let a = allreduce_time(AllReduceAlgo::Rabenseifner, 1 << 20, 8, link());
        let b = allreduce_time(AllReduceAlgo::Rabenseifner, 1 << 21, 8, link());
        assert!(b > a);
        let c = allreduce_time(AllReduceAlgo::Rabenseifner, 1 << 20, 16, link());
        assert!(c > a);
    }
}
