//! Deterministic synthetic token streams.
//!
//! The paper trains on Wikipedia/WikiText-2; throughput and schedule
//! correctness are independent of data content, so micro-batches are
//! generated from a seeded stream keyed by micro-batch id — every runtime
//! (sequential, pipelined, data-parallel) sees exactly the same bytes.

use chimera_tensor::Rng;

use crate::stage::ModelConfig;

/// Synthetic next-token-prediction data source.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticData {
    cfg: ModelConfig,
    seed: u64,
}

impl SyntheticData {
    /// New source for `cfg` with its own `seed`.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        SyntheticData { cfg, seed }
    }

    /// Tokens and next-token targets for micro-batch `micro` with
    /// `batch_size` sequences: `batch_size * seq` ids each. Targets are the
    /// input shifted by one within each sequence (wrapping).
    pub fn batch(&self, micro: u64, batch_size: usize) -> (Vec<u32>, Vec<u32>) {
        let mut rng = Rng::new(
            self.seed
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(micro.wrapping_mul(0xE703_7ED1_A0B4_28DB)),
        );
        let s = self.cfg.seq;
        let n = batch_size * s;
        let tokens: Vec<u32> = (0..n).map(|_| rng.below(self.cfg.vocab as u32)).collect();
        let mut targets = vec![0u32; n];
        for b in 0..batch_size {
            for i in 0..s {
                targets[b * s + i] = tokens[b * s + (i + 1) % s];
            }
        }
        (tokens, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_micro() {
        let d = SyntheticData::new(ModelConfig::tiny(), 1);
        assert_eq!(d.batch(3, 2), d.batch(3, 2));
        assert_ne!(d.batch(3, 2).0, d.batch(4, 2).0);
    }

    #[test]
    fn targets_are_shifted_tokens() {
        let cfg = ModelConfig::tiny();
        let d = SyntheticData::new(cfg, 2);
        let (tokens, targets) = d.batch(0, 3);
        let s = cfg.seq;
        for b in 0..3 {
            for i in 0..s - 1 {
                assert_eq!(targets[b * s + i], tokens[b * s + i + 1]);
            }
            assert_eq!(targets[b * s + s - 1], tokens[b * s]);
        }
    }

    #[test]
    fn tokens_within_vocab() {
        let cfg = ModelConfig::tiny();
        let d = SyntheticData::new(cfg, 3);
        let (tokens, _) = d.batch(9, 4);
        assert!(tokens.iter().all(|&t| (t as usize) < cfg.vocab));
        assert_eq!(tokens.len(), 4 * cfg.seq);
    }
}
