//! Cache-blocked, multi-threaded matmul kernels with a **fixed reduction
//! order**.
//!
//! # Determinism contract
//!
//! Every kernel here produces results that are **bit-identical at any thread
//! count and any tile size**. The runtime's replica verification and
//! checkpoint-replay tests compare parameters with `==`, so "close enough"
//! floating point is not acceptable. The contract is enforced structurally:
//!
//! * Work is partitioned across threads by **output row**: each output row is
//!   computed entirely by one thread, so its accumulation order never depends
//!   on the thread count.
//! * Tiling only reorders *independent* scalar updates. For the accumulating
//!   kernels ([`matmul_into`], [`t_matmul_into`]) every output element is
//!   accumulated directly (no per-tile partial sums), walking the shared `k`
//!   dimension in ascending order — exactly the order of the naive untiled
//!   loop. For the dot-product kernel ([`matmul_t_into`]) each element is one
//!   [`dot`](crate::tensor::dot) call, whose 8-lane reduction order is fixed
//!   by that function alone.
//!
//! The [`naive`] module keeps the untiled single-threaded reference loops;
//! the property tests assert bit-equality between the two at thread counts
//! {1, 2, 4, 8} and adversarial shapes.
//!
//! # Blocking scheme
//!
//! The classic MC×KC×NC loop nest: the output is processed in `MC`-row
//! stripes; for each stripe, `KC`-deep slabs of the shared dimension are
//! streamed against `NC`-wide column panels of `b`, so the hot working set
//! (an `MC×KC` panel of `a`, a `KC×NC` panel of `b`, an `MC×NC` panel of the
//! output) stays cache-resident while the innermost loop is a branch-free
//! AXPY over `NC` contiguous floats that LLVM autovectorizes. There is no
//! per-element zero test: a data-dependent branch in the inner loop defeats
//! vectorization on dense inputs (see [`crate::tensor::Tensor::matmul_zero_skip`]
//! for the sparse-aware entry point that keeps it).
//!
//! # Threading
//!
//! Kernels run on a scoped pool ([`std::thread::scope`]) with one contiguous
//! row range per thread. Threads are only spawned when the problem clears
//! [`PAR_MIN_FLOPS`]; below that the sequential kernel wins. The thread
//! count comes from [`set_threads`], falling back to the `CHIMERA_THREADS`
//! environment variable, defaulting to 1.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::tensor::dot;

/// Row-stripe height (output rows per tile).
pub const MC: usize = 64;
/// Depth of one slab of the shared `k` dimension.
pub const KC: usize = 128;
/// Width of one column panel of `b` / the output.
pub const NC: usize = 256;

/// Minimum multiply-add count (`2·m·k·n`) before a kernel spawns threads;
/// below this the scoped-spawn overhead exceeds the parallel win.
///
/// Retuned upward (2²¹ → 2²⁵) after `BENCH_kernels.json` recorded the
/// multi-threaded path *losing* to single-threaded on small shapes
/// (e.g. 128×256×256 ≈ 2²⁴ MAs): per-call scoped spawn + join costs tens of
/// microseconds, which a sub-millisecond matmul cannot amortize. 2²⁵ keeps
/// every shape below ~512×256×256 sequential while the large training GEMMs
/// (≥ 2²⁷) still thread. `fig_kernels --check` gates `mt ≥ 0.9 × 1t` per
/// shape so this regression cannot silently return.
pub const PAR_MIN_FLOPS: u64 = 1 << 25;

// --- intra-op thread-count configuration ------------------------------------

/// 0 = unset (resolve from `CHIMERA_THREADS`, default 1).
static THREADS: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Parse a `CHIMERA_THREADS`-style value: a positive integer, anything else
/// (absent, empty, `0`, garbage) is `None`.
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Set the intra-op thread count for this process. `0` resets to the
/// environment default (`CHIMERA_THREADS`, else 1).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The configured intra-op thread count: the last [`set_threads`] value, or
/// `CHIMERA_THREADS` (read once), or 1.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => *ENV_THREADS.get_or_init(|| {
            parse_threads(std::env::var("CHIMERA_THREADS").ok().as_deref()).unwrap_or(1)
        }),
        n => n,
    }
}

/// The machine's available parallelism, read once. Oversubscribing a
/// smaller machine (e.g. `CHIMERA_THREADS=4` inside a 1-core container)
/// only adds context-switch overhead — the determinism contract makes the
/// clamp safe, since results are bit-identical at any thread count.
fn hw_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Threads actually used for a kernel over `rows` output rows and `flops`
/// multiply-adds: 1 below [`PAR_MIN_FLOPS`], otherwise capped by the
/// machine's parallelism and so every thread gets at least one full
/// [`MC`]-row stripe.
fn effective_threads(rows: usize, flops: u64) -> usize {
    if flops < PAR_MIN_FLOPS {
        return 1;
    }
    threads().min(hw_threads()).min(rows.div_ceil(MC)).max(1)
}

// --- kernel-time counters ----------------------------------------------------

static CALLS: AtomicU64 = AtomicU64::new(0);
static FLOPS: AtomicU64 = AtomicU64::new(0);
static NANOS: AtomicU64 = AtomicU64::new(0);
static TIMING: AtomicBool = AtomicBool::new(false);

/// Enable wall-clock timing of kernel calls ([`stats`] `nanos`). Off by
/// default: two `Instant` reads per call are measurable on tiny matmuls.
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::SeqCst);
}

/// Cumulative kernel counters since the last [`reset_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Matmul-family kernel invocations.
    pub calls: u64,
    /// Multiply-add operations issued (`2·m·k·n` per call).
    pub flops: u64,
    /// Wall-clock nanoseconds inside kernels (0 unless [`set_timing`] on).
    pub nanos: u64,
}

impl KernelStats {
    /// Mean throughput in GFLOP/s over the timed window (`None` without
    /// timing data).
    pub fn gflops(&self) -> Option<f64> {
        (self.nanos > 0).then(|| self.flops as f64 / self.nanos as f64)
    }
}

/// Snapshot the kernel counters.
pub fn stats() -> KernelStats {
    KernelStats {
        calls: CALLS.load(Ordering::Relaxed),
        flops: FLOPS.load(Ordering::Relaxed),
        nanos: NANOS.load(Ordering::Relaxed),
    }
}

/// Zero the kernel counters.
pub fn reset_stats() {
    CALLS.store(0, Ordering::Relaxed);
    FLOPS.store(0, Ordering::Relaxed);
    NANOS.store(0, Ordering::Relaxed);
}

/// Count one kernel call; returns a start instant while timing is enabled.
fn enter(flops: u64) -> Option<Instant> {
    CALLS.fetch_add(1, Ordering::Relaxed);
    FLOPS.fetch_add(flops, Ordering::Relaxed);
    TIMING.load(Ordering::Relaxed).then(Instant::now)
}

fn leave(start: Option<Instant>) {
    if let Some(t0) = start {
        NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

// --- `a @ b` -----------------------------------------------------------------

/// `out += a @ b` where `a: [m,k]`, `b: [k,n]`, `out: [m,n]`, all row-major.
///
/// Accumulates into `out` (zero it first for a plain product). Per output
/// element the `k` dimension is walked in ascending order regardless of
/// tiling or thread count.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let t0 = enter(flops);
    let t = effective_threads(m, flops);
    if t <= 1 {
        matmul_block(a, b, out, m, k, n);
    } else {
        par_rows(a, out, m, k, n, t, |a_chunk, out_chunk, rows| {
            matmul_block(a_chunk, b, out_chunk, rows, k, n);
        });
    }
    leave(t0);
}

/// Sequential MC×KC×NC-tiled stripe of [`matmul_into`].
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    for i0 in (0..rows).step_by(MC) {
        let i1 = (i0 + MC).min(rows);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for j0 in (0..n).step_by(NC) {
                let j1 = (j0 + NC).min(n);
                for i in i0..i1 {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n + j0..i * n + j1];
                    for (kk, &aik) in a_row[k0..k1].iter().enumerate() {
                        let b_row = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j1];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

// --- `aᵀ @ b` ----------------------------------------------------------------

/// `out += aᵀ @ b` where `a: [k,m]`, `b: [k,n]`, `out: [m,n]` — the
/// `dW = Xᵀ dY` pattern, without materializing the transpose.
///
/// Accumulates into `out`, so gradient buffers can take the product in
/// place. Per output element the `k` dimension is walked in ascending order.
pub fn t_matmul_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let t0 = enter(flops);
    let t = effective_threads(m, flops);
    if t <= 1 {
        t_matmul_block(a, b, out, 0..m, k, m, n);
    } else {
        // Partition by output row = column of `a`; `a` cannot be sliced per
        // chunk (columns interleave), so workers index it with their offset.
        let chunk = m.div_ceil(t);
        std::thread::scope(|s| {
            let mut rest = out;
            let mut c0 = 0usize;
            while c0 < m {
                let rows = chunk.min(m - c0);
                let (mine, tail) = rest.split_at_mut(rows * n);
                s.spawn(move || t_matmul_block(a, b, mine, c0..c0 + rows, k, m, n));
                rest = tail;
                c0 += rows;
            }
        });
    }
    leave(t0);
}

/// Sequential stripe of [`t_matmul_into`]: output rows `cols` (columns of
/// `a`), written to `out` starting at local row 0.
fn t_matmul_block(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    cols: std::ops::Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    let (c0, rows) = (cols.start, cols.len());
    for i0 in (0..rows).step_by(MC) {
        let i1 = (i0 + MC).min(rows);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for j0 in (0..n).step_by(NC) {
                let j1 = (j0 + NC).min(n);
                for kk in k0..k1 {
                    let a_row = &a[kk * m..(kk + 1) * m];
                    let b_row = &b[kk * n + j0..kk * n + j1];
                    for i in i0..i1 {
                        let aik = a_row[c0 + i];
                        let out_row = &mut out[i * n + j0..i * n + j1];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

// --- `a @ bᵀ` ----------------------------------------------------------------

/// `out += a @ bᵀ` where `a: [m,k]`, `b: [n,k]`, `out: [m,n]` — the
/// `dX = dY Wᵀ` pattern. Each element is a single [`dot`] over two
/// contiguous rows, so its reduction order is fixed by `dot` alone.
pub fn matmul_t_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let t0 = enter(flops);
    let t = effective_threads(m, flops);
    if t <= 1 {
        matmul_t_block(a, b, out, m, k, n);
    } else {
        par_rows(a, out, m, k, n, t, |a_chunk, out_chunk, rows| {
            matmul_t_block(a_chunk, b, out_chunk, rows, k, n);
        });
    }
    leave(t0);
}

/// Sequential stripe of [`matmul_t_into`]: `MC` rows of `a` are held hot
/// while rows of `b` stream through once per stripe.
fn matmul_t_block(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    for i0 in (0..rows).step_by(MC) {
        let i1 = (i0 + MC).min(rows);
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            for i in i0..i1 {
                out[i * n + j] += dot(&a[i * k..(i + 1) * k], b_row);
            }
        }
    }
}

// --- shared row-partitioned driver -------------------------------------------

/// Split `a` (`m×k`, chunkable by row) and `out` (`m×n`) into `t` contiguous
/// row ranges and run `body(a_chunk, out_chunk, rows)` on scoped threads.
fn par_rows(
    a: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    t: usize,
    body: impl Fn(&[f32], &mut [f32], usize) + Sync,
) {
    let chunk = m.div_ceil(t);
    let body = &body;
    std::thread::scope(|s| {
        let mut a_rest = a;
        let mut out_rest = out;
        let mut done = 0usize;
        while done < m {
            let rows = chunk.min(m - done);
            let (a_mine, a_tail) = a_rest.split_at(rows * k);
            let (o_mine, o_tail) = out_rest.split_at_mut(rows * n);
            s.spawn(move || body(a_mine, o_mine, rows));
            a_rest = a_tail;
            out_rest = o_tail;
            done += rows;
        }
    });
}

// --- naive reference loops ---------------------------------------------------

/// The untiled, single-threaded reference loops the tiled kernels must match
/// **bit-for-bit**. Kept for the equivalence property tests and as the
/// "before" side of the kernel benchmarks; never used on the training hot
/// path.
pub mod naive {
    use crate::tensor::dot;

    /// Naive `out += a @ b` in i-k-j order (the order the tiled kernel
    /// reproduces per element).
    pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }

    /// Naive `out += aᵀ @ b` in k-i-j order (ascending `k` per element).
    pub fn t_matmul_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (i, &aik) in a_row.iter().enumerate() {
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }

    /// Naive `out += a @ bᵀ`: one [`dot`] per element, same as the tiled
    /// kernel.
    pub fn matmul_t_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                out[i * n + j] += dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn randvec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    /// Tiled kernels match the naive loops bit-for-bit on shapes straddling
    /// every tile boundary, at several thread counts.
    #[test]
    fn tiled_matches_naive_bitexact() {
        let shapes = [
            (1, 1, 1),
            (3, 5, 2),
            (MC, KC, NC),
            (MC + 1, KC + 3, NC + 5),
            (2 * MC + 7, 2 * KC + 1, 17),
            (130, 70, 300),
        ];
        let saved = threads();
        for &(m, k, n) in &shapes {
            let a = randvec(m * k, 1);
            let b = randvec(k * n, 2);
            let at = randvec(k * m, 3);
            let bt = randvec(n * k, 4);

            let mut want = vec![0.0f32; m * n];
            naive::matmul_into(&a, &b, &mut want, m, k, n);
            let mut want_t = vec![0.0f32; m * n];
            naive::t_matmul_into(&at, &b, &mut want_t, k, m, n);
            let mut want_mt = vec![0.0f32; m * n];
            naive::matmul_t_into(&a, &bt, &mut want_mt, m, k, n);

            for t in [1usize, 2, 3, 8] {
                set_threads(t);
                let mut got = vec![0.0f32; m * n];
                matmul_into(&a, &b, &mut got, m, k, n);
                assert_bits_eq(&got, &want, &format!("matmul {m}x{k}x{n} t{t}"));

                let mut got = vec![0.0f32; m * n];
                t_matmul_into(&at, &b, &mut got, k, m, n);
                assert_bits_eq(&got, &want_t, &format!("t_matmul {m}x{k}x{n} t{t}"));

                let mut got = vec![0.0f32; m * n];
                matmul_t_into(&a, &bt, &mut got, m, k, n);
                assert_bits_eq(&got, &want_mt, &format!("matmul_t {m}x{k}x{n} t{t}"));
            }
        }
        set_threads(saved);
    }

    /// k = 0 contracts to an all-zero product without panicking.
    #[test]
    fn zero_k_is_identity_on_zeroed_out() {
        let mut out = vec![1.0f32; 6];
        matmul_into(&[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![1.0; 6]); // accumulating: adds nothing
        let mut out = vec![0.0f32; 6];
        t_matmul_into(&[], &[], &mut out, 0, 2, 3);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![0.0f32; 6];
        matmul_t_into(&[], &[], &mut out, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn accumulates_into_nonzero_out() {
        let (m, k, n) = (3, 4, 5);
        let a = randvec(m * k, 9);
        let b = randvec(k * n, 10);
        let base = randvec(m * n, 11);
        let mut got = base.clone();
        matmul_into(&a, &b, &mut got, m, k, n);
        let mut want = base;
        naive::matmul_into(&a, &b, &mut want, m, k, n);
        assert_bits_eq(&got, &want, "accumulating matmul");
    }

    #[test]
    fn parse_threads_rules() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("junk")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    // Counters are process-global and tests in this binary run
    // concurrently, so deltas are lower bounds here; exact accounting is
    // asserted in `tests/pool_stats.rs`.
    #[test]
    fn stats_count_calls_and_flops() {
        let before = stats();
        let a = randvec(4 * 6, 20);
        let b = randvec(6 * 3, 21);
        let mut out = vec![0.0f32; 4 * 3];
        matmul_into(&a, &b, &mut out, 4, 6, 3);
        let after = stats();
        assert!(after.calls - before.calls >= 1);
        assert!(after.flops - before.flops >= 2 * 4 * 6 * 3);
        set_timing(true);
        matmul_into(&a, &b, &mut out, 4, 6, 3);
        set_timing(false);
        assert!(stats().gflops().is_some());
    }
}
