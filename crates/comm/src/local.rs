//! In-process backend: crossbeam channels, one per endpoint.
//!
//! This preserves the runtime's original interconnect exactly: payloads
//! *move* through an unbounded channel (a tensor is never copied or
//! serialized), sends never block, and a dead peer is detected through the
//! channel disconnecting. On top of that the endpoint adds the keyed inbox
//! — messages drained off the channel are parked under their [`MsgKey`]
//! until the owning worker asks for that exact key — which is what makes
//! receive order independent of delivery order.
//!
//! # Sessions and chaos on a lossless medium
//!
//! To keep the two backends behaviourally aligned, local parcels carry the
//! same per-link sequence numbers as TCP frames, and the receive side
//! dedups on `(sender, seq)` — a duplicated delivery is absorbed exactly
//! once, bit-for-bit, just as the TCP session layer guarantees. Because a
//! channel cannot actually lose or sever anything, an installed
//! [`NetChaos`] plan degrades gracefully: `duplicate` applies natively
//! (the parcel is sent twice), `slow` sleeps, while `drop`, `reorder`, and
//! `break` all become **deferred delivery** — the parcel is held back and
//! flushed after the next send on the same link (or when the endpoint is
//! dropped), so chaos perturbs ordering and multiplicity but never
//! completeness. Unlike TCP there is no retransmit machinery here; dedup
//! alone is what keeps delivery exactly-once.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::chaos::{LinkChaos, NetChaos};
use crate::fault::FaultInjection;
use crate::transport::{poll_deadline, CommError, MsgKey, Payload, Rank, Transport};

/// Builds the full set of in-process endpoints for one fabric.
pub struct LocalFabric;

impl LocalFabric {
    /// Create `world` fully connected endpoints. Endpoint `k` of the
    /// returned vector has rank `k`; move each into its worker thread
    /// (behind an `Arc<dyn Transport>`). Dropping an endpoint disconnects
    /// its channel, so peers sending to a dead rank get
    /// [`CommError::PeerGone`] rather than buffering forever.
    #[allow(clippy::new_ret_no_self)] // factory for the whole fabric, not one endpoint
    pub fn new(world: u32) -> Vec<LocalEndpoint> {
        let (txs, rxs): (Vec<Sender<Parcel>>, Vec<Receiver<Parcel>>) =
            (0..world).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| LocalEndpoint {
                rank: rank as Rank,
                world,
                rx: Mutex::new(rx),
                tx: txs.clone(),
                inbox: Mutex::new(HashMap::new()),
                dedup: Mutex::new(HashMap::new()),
                fault: None,
                chaos: None,
                links: (0..world)
                    .map(|_| Mutex::new(LinkState::default()))
                    .collect(),
                next_seq: (0..world).map(|_| AtomicU64::new(1)).collect(),
                sent: AtomicU64::new(0),
                received: AtomicU64::new(0),
                dup_dropped: AtomicU64::new(0),
            })
            .collect()
    }
}

/// One sequenced message: `(seq, sender, key, payload)`.
type Parcel = (u64, Rank, MsgKey, Payload);

/// Per-destination chaos state on the sender: the seeded event counter and
/// any parcels currently held back by a defer verdict.
#[derive(Default)]
struct LinkState {
    chaos: LinkChaos,
    held: VecDeque<Parcel>,
}

/// Receive-side dedup state per sender: highest contiguous sequence
/// delivered, plus the sparse set of sequences delivered ahead of it.
#[derive(Default)]
struct RecvTrack {
    watermark: u64,
    ahead: BTreeSet<u64>,
}

impl RecvTrack {
    /// True the first time `seq` is seen, false for any replay of it.
    fn fresh(&mut self, seq: u64) -> bool {
        if seq <= self.watermark || self.ahead.contains(&seq) {
            return false;
        }
        self.ahead.insert(seq);
        while self.ahead.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        true
    }
}

/// One rank of a [`LocalFabric`].
pub struct LocalEndpoint {
    rank: Rank,
    world: u32,
    /// The stub crossbeam `Receiver` wraps `mpsc` and is `!Sync`; draining
    /// happens under this lock (uncontended: only the owning worker
    /// receives).
    rx: Mutex<Receiver<Parcel>>,
    tx: Vec<Sender<Parcel>>,
    inbox: Mutex<HashMap<MsgKey, VecDeque<Payload>>>,
    dedup: Mutex<HashMap<Rank, RecvTrack>>,
    fault: Option<FaultInjection>,
    chaos: Option<NetChaos>,
    links: Vec<Mutex<LinkState>>,
    next_seq: Vec<AtomicU64>,
    sent: AtomicU64,
    received: AtomicU64,
    dup_dropped: AtomicU64,
}

impl LocalEndpoint {
    /// Arm send-path fault injection on this endpoint (before it is shared
    /// with its worker thread).
    pub fn install_fault(&mut self, fault: FaultInjection) {
        self.fault = Some(fault);
    }

    /// Arm a seeded chaos plan on this endpoint's outbound links (before
    /// it is shared with its worker thread). See the module docs for how
    /// verdicts degrade on a lossless medium.
    pub fn install_chaos(&mut self, chaos: NetChaos) {
        if !chaos.is_empty() {
            self.chaos = Some(chaos);
        }
    }

    /// Duplicated parcels this endpoint has absorbed on receive.
    pub fn dup_dropped(&self) -> u64 {
        self.dup_dropped.load(Ordering::Relaxed)
    }

    fn push(&self, to: Rank, parcel: Parcel) -> Result<(), CommError> {
        self.tx
            .get(to as usize)
            .ok_or(CommError::PeerGone { to })?
            .send(parcel)
            .map_err(|_| CommError::PeerGone { to })
    }

    /// Deliver everything a defer verdict is still holding back for `to`.
    fn flush_held(&self, to: Rank) {
        let mut held = {
            let mut link = self.links[to as usize].lock();
            std::mem::take(&mut link.held)
        };
        while let Some(parcel) = held.pop_front() {
            let _ = self.push(to, parcel);
        }
    }

    /// Pull everything already delivered off the channel into the keyed
    /// inbox; returns `true` when at least one message was drained.
    fn drain(&self) -> bool {
        let rx = self.rx.lock();
        let mut progressed = false;
        while let Ok((seq, from, key, payload)) = rx.try_recv() {
            progressed = true;
            if seq != 0 && !self.dedup.lock().entry(from).or_default().fresh(seq) {
                self.dup_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.received
                .fetch_add(payload.wire_bytes(), Ordering::Relaxed);
            self.inbox.lock().entry(key).or_default().push_back(payload);
        }
        progressed
    }

    fn take(&self, key: &MsgKey) -> Option<Payload> {
        let mut inbox = self.inbox.lock();
        let q = inbox.get_mut(key)?;
        let payload = q.pop_front();
        if q.is_empty() {
            inbox.remove(key);
        }
        payload
    }

    /// Non-blocking receive: one keyed-inbox lookup (draining anything
    /// already delivered) without the deadline poll loop. A `None` result
    /// consumes nothing, which is what lets the [`crate::modelcheck`]
    /// explorer drive an endpoint one step at a time.
    pub fn try_recv(&self, key: &MsgKey) -> Option<Payload> {
        if let Some(p) = self.take(key) {
            return Some(p);
        }
        self.drain();
        self.take(key)
    }
}

impl Transport for LocalEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn world(&self) -> u32 {
        self.world
    }

    fn send(&self, to: Rank, key: MsgKey, payload: Payload) -> Result<(), CommError> {
        if let Some(fault) = &self.fault {
            if fault.on_send(&key) {
                return Ok(());
            }
        }
        if to as usize >= self.tx.len() {
            return Err(CommError::PeerGone { to });
        }
        self.sent.fetch_add(payload.wire_bytes(), Ordering::Relaxed);
        let seq = self.next_seq[to as usize].fetch_add(1, Ordering::Relaxed);
        let parcel: Parcel = (seq, self.rank, key, payload);
        let Some(plan) = &self.chaos else {
            return self.push(to, parcel);
        };
        let verdict = {
            let mut link = self.links[to as usize].lock();
            plan.next(to, &mut link.chaos)
        };
        if let Some(d) = verdict.delay {
            std::thread::sleep(d);
        }
        if verdict.drop || verdict.reorder || verdict.break_link {
            // Lossless medium: defer behind the next send on this link
            // (releasing whatever the previous verdict held back).
            let prior = {
                let mut link = self.links[to as usize].lock();
                let prior = std::mem::take(&mut link.held);
                link.held.push_back(parcel);
                prior
            };
            for held in prior {
                let _ = self.push(to, held);
            }
            return Ok(());
        }
        let dup = verdict.duplicate.then(|| parcel.clone());
        self.push(to, parcel)?;
        if let Some(copy) = dup {
            // Receive-side dedup absorbs the replay.
            self.push(to, copy)?;
        }
        self.flush_held(to);
        Ok(())
    }

    fn recv_deadline(&self, key: MsgKey, timeout: Duration) -> Result<Payload, CommError> {
        if let Some(p) = self.take(&key) {
            return Ok(p);
        }
        self.drain();
        if let Some(p) = self.take(&key) {
            return Ok(p);
        }
        poll_deadline(timeout, || {
            self.drain();
            self.take(&key)
        })
        .ok_or(CommError::Timeout {
            key: key.describe(),
            waited: timeout,
        })
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    fn bytes_received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

impl Drop for LocalEndpoint {
    fn drop(&mut self) {
        // A plan that deferred the final parcel on a link must still
        // deliver it: completeness survives chaos.
        for to in 0..self.tx.len() as Rank {
            self.flush_held(to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SendFault;
    use std::sync::Arc;

    fn key(micro: u64) -> MsgKey {
        MsgKey::Act {
            replica: 0,
            stage: 0,
            micro,
        }
    }

    #[test]
    fn keyed_receive_tolerates_reordering() {
        let eps = LocalFabric::new(2);
        let (a, b) = (&eps[0], &eps[1]);
        a.send(1, key(1), Payload::Flat(vec![1.0])).unwrap();
        a.send(1, key(0), Payload::Flat(vec![0.0])).unwrap();
        // b asks for micro 0 first even though micro 1 arrived first.
        let p0 = b.recv_deadline(key(0), Duration::from_secs(1)).unwrap();
        let p1 = b.recv_deadline(key(1), Duration::from_secs(1)).unwrap();
        assert_eq!(p0.into_flat(), vec![0.0]);
        assert_eq!(p1.into_flat(), vec![1.0]);
        assert!(a.bytes_sent() > 0);
        assert_eq!(b.bytes_received(), a.bytes_sent());
    }

    #[test]
    fn missing_message_times_out_with_key_description() {
        let eps = LocalFabric::new(2);
        let err = eps[1]
            .recv_deadline(key(7), Duration::from_millis(30))
            .unwrap_err();
        match err {
            CommError::Timeout { key, waited } => {
                assert_eq!(key, "act m7@s0/r0");
                assert_eq!(waited, Duration::from_millis(30));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn dead_peer_surfaces_as_peer_gone() {
        let mut eps = LocalFabric::new(2);
        drop(eps.remove(1));
        let err = eps[0].send(1, key(0), Payload::Flat(vec![])).unwrap_err();
        assert_eq!(err, CommError::PeerGone { to: 1 });
    }

    #[test]
    fn installed_drop_fault_loses_exactly_one_message() {
        let mut eps = LocalFabric::new(2);
        eps[0].install_fault(FaultInjection::drop_msg(SendFault {
            grad: false,
            micro: 0,
        }));
        let b = Arc::new(eps.remove(1));
        let a = Arc::new(eps.remove(0));
        a.send(1, key(0), Payload::Flat(vec![1.0])).unwrap();
        assert!(b.recv_deadline(key(0), Duration::from_millis(30)).is_err());
        // One-shot: the retransmission goes through.
        a.send(1, key(0), Payload::Flat(vec![1.0])).unwrap();
        assert!(b.recv_deadline(key(0), Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn concurrent_producers_one_consumer() {
        let mut eps = LocalFabric::new(3);
        let sink = Arc::new(eps.remove(0));
        let producers: Vec<_> = eps.into_iter().map(Arc::new).collect();
        let handles: Vec<_> = producers
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    for m in 0..16u64 {
                        let k = MsgKey::Coll {
                            tag: 0,
                            round: m,
                            from: ep.rank(),
                        };
                        ep.send(0, k, Payload::Flat(vec![ep.rank() as f32]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for m in 0..16u64 {
            for from in 1..3u32 {
                let k = MsgKey::Coll {
                    tag: 0,
                    round: m,
                    from,
                };
                let v = sink.recv_deadline(k, Duration::from_secs(2)).unwrap();
                assert_eq!(v.into_flat(), vec![from as f32]);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Chaos duplication on a local link: every duplicate is absorbed by
    /// receive-side dedup, so delivery stays exactly-once.
    #[test]
    fn duplicated_parcels_are_deduped_exactly_once() {
        let mut eps = LocalFabric::new(2);
        eps[0].install_chaos(NetChaos::new(3).with_duplicate(1.0));
        let n = 12u64;
        for m in 0..n {
            eps[0]
                .send(1, key(m), Payload::Flat(vec![m as f32]))
                .unwrap();
        }
        for m in 0..n {
            let v = eps[1]
                .recv_deadline(key(m), Duration::from_secs(1))
                .unwrap()
                .into_flat();
            assert_eq!(v, vec![m as f32]);
        }
        // Nothing extra is left behind, and the dedup visibly did work.
        for m in 0..n {
            assert!(eps[1]
                .recv_deadline(key(m), Duration::from_millis(20))
                .is_err());
        }
        assert_eq!(eps[1].dup_dropped(), n);
    }

    /// Chaos deferral (drop/reorder degrade to held-back delivery) never
    /// loses a parcel: the next send — or endpoint teardown — flushes it.
    #[test]
    fn deferred_parcels_are_flushed_not_lost() {
        let mut eps = LocalFabric::new(2);
        // Everything defers: each parcel is held until the next send, and
        // the final one until the sender is dropped.
        eps[0].install_chaos(NetChaos::new(5).with_flaky(1.0));
        let b = {
            let b = eps.remove(1);
            let a = eps.remove(0);
            for m in 0..8u64 {
                a.send(1, key(m), Payload::Flat(vec![m as f32])).unwrap();
            }
            drop(a); // flushes the last held parcel
            b
        };
        for m in 0..8u64 {
            let v = b
                .recv_deadline(key(m), Duration::from_secs(1))
                .unwrap()
                .into_flat();
            assert_eq!(v, vec![m as f32]);
        }
    }
}
