//! Gradient compression — the paper's stated next step: "to reduce the
//! communication cost of gradient synchronization by exploiting
//! sparsification [22, 47] and quantization [1] ... is our next step" (§5).
//!
//! Two classic compressors are implemented:
//!
//! * **QSGD** stochastic quantization [1]: each value is rounded to one of
//!   `s` levels of `‖v‖∞` with probabilities that make the estimate
//!   unbiased; the wire format is one `f32` norm plus ⌈log2(2s+1)⌉ bits per
//!   value.
//! * **Top-k sparsification** [22, 47] with error feedback: only the `k`
//!   largest-magnitude coordinates are transmitted; the untransmitted
//!   residual is returned so the caller can fold it into the next step.

/// A QSGD-quantized vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// The `‖v‖∞` scale.
    pub norm: f32,
    /// Number of quantization levels `s` (per sign).
    pub levels: u8,
    /// Signed level per value, in `[-s, s]`.
    pub codes: Vec<i8>,
}

impl Quantized {
    /// Length of the encoded vector.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when encoding an empty vector.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Wire size in bytes: the norm plus the packed codes at
    /// ⌈log2(2s+1)⌉ bits each.
    pub fn wire_bytes(&self) -> usize {
        let bits_per_value = (2 * self.levels as u32 + 1)
            .next_power_of_two()
            .trailing_zeros();
        4 + (self.codes.len() * bits_per_value as usize).div_ceil(8)
    }

    /// Compression ratio vs dense f32.
    pub fn ratio(&self) -> f64 {
        if self.codes.is_empty() {
            return 1.0;
        }
        self.wire_bytes() as f64 / (4 * self.codes.len()) as f64
    }
}

/// Deterministic stream for the stochastic rounding (SplitMix64).
fn mix(state: &mut u64) -> f32 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 40) as f32 / (1u64 << 24) as f32
}

/// Quantize `v` to `levels` levels per sign with stochastic (unbiased)
/// rounding driven by `seed`.
pub fn quantize(v: &[f32], levels: u8, seed: u64) -> Quantized {
    assert!(levels >= 1);
    let norm = v.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
    let mut state = seed;
    let codes = if norm == 0.0 {
        vec![0; v.len()]
    } else {
        v.iter()
            .map(|&x| {
                let scaled = x.abs() / norm * levels as f32; // in [0, s]
                let low = scaled.floor();
                let p_up = scaled - low;
                let q = low + f32::from(mix(&mut state) < p_up);
                (q as i8).clamp(0, levels as i8) * if x < 0.0 { -1 } else { 1 }
            })
            .collect()
    };
    Quantized {
        norm,
        levels,
        codes,
    }
}

/// Reconstruct the (unbiased) estimate.
pub fn dequantize(q: &Quantized) -> Vec<f32> {
    let scale = q.norm / q.levels as f32;
    q.codes.iter().map(|&c| c as f32 * scale).collect()
}

/// A top-k sparsified vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Sparse {
    /// Dense length.
    pub len: usize,
    /// Kept coordinates.
    pub indices: Vec<u32>,
    /// Kept values.
    pub values: Vec<f32>,
}

impl Sparse {
    /// Wire size in bytes (index + value per kept coordinate).
    pub fn wire_bytes(&self) -> usize {
        8 + self.indices.len() * 8
    }

    /// Compression ratio vs dense f32.
    pub fn ratio(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        self.wire_bytes() as f64 / (4 * self.len) as f64
    }

    /// Densify back to length `len`.
    pub fn densify(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }
}

/// Keep the `k` largest-magnitude coordinates of `v`; returns the sparse
/// message and the residual (`v` minus the message) for error feedback.
pub fn top_k(v: &[f32], k: usize) -> (Sparse, Vec<f32>) {
    let k = k.min(v.len());
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&a, &b| {
        v[b].abs()
            .partial_cmp(&v[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order[..k].to_vec();
    kept.sort_unstable();
    let sparse = Sparse {
        len: v.len(),
        indices: kept.iter().map(|&i| i as u32).collect(),
        values: kept.iter().map(|&i| v[i]).collect(),
    };
    let mut residual = v.to_vec();
    for &i in &kept {
        residual[i] = 0.0;
    }
    (sparse, residual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_zero_and_extremes() {
        let v = vec![0.0f32, 1.0, -1.0, 0.5];
        let q = quantize(&v, 4, 1);
        let d = dequantize(&q);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0); // extremes are exact
        assert_eq!(d[2], -1.0);
        assert!((d[3] - 0.5).abs() <= 0.25 + 1e-6); // within one level
    }

    #[test]
    fn quantization_is_unbiased() {
        let v = vec![0.37f32, -0.81, 0.12, 0.99];
        let mut sums = vec![0.0f64; v.len()];
        let trials = 20_000;
        for seed in 0..trials {
            let d = dequantize(&quantize(&v, 2, seed));
            for (s, x) in sums.iter_mut().zip(&d) {
                *s += *x as f64;
            }
        }
        for (s, &x) in sums.iter().zip(&v) {
            let mean = s / trials as f64;
            assert!((mean - x as f64).abs() < 0.02, "E[q] = {mean} vs {x}");
        }
    }

    #[test]
    fn wire_bytes_shrink() {
        let v = vec![1.0f32; 1000];
        let q = quantize(&v, 4, 0); // 9 levels -> 4 bits/value
        assert!(q.ratio() < 0.2, "ratio {}", q.ratio());
        assert_eq!(q.wire_bytes(), 4 + 500);
    }

    #[test]
    fn top_k_keeps_largest_and_residual_complements() {
        let v = vec![0.1f32, -5.0, 0.3, 2.0, -0.2];
        let (s, r) = top_k(&v, 2);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-5.0, 2.0]);
        // message + residual == original
        let dense = s.densify();
        for i in 0..v.len() {
            assert_eq!(dense[i] + r[i], v[i]);
        }
        // Compression only pays off on long vectors (index overhead).
        let long = vec![1.0f32; 10_000];
        let (s_long, _) = top_k(&long, 100);
        assert!(s_long.ratio() < 0.05, "ratio {}", s_long.ratio());
    }

    #[test]
    fn top_k_degenerate_cases() {
        let v = vec![1.0f32, 2.0];
        let (s, r) = top_k(&v, 10);
        assert_eq!(s.densify(), v);
        assert!(r.iter().all(|&x| x == 0.0));
        let (s0, _) = top_k(&[], 3);
        assert_eq!(s0.len, 0);
        assert_eq!(s0.ratio(), 1.0);
    }

    #[test]
    fn error_feedback_converges() {
        // Accumulating residuals, the transmitted total approaches the true
        // gradient sum (the classic EF-SGD property).
        let g = vec![0.5f32, -0.25, 0.1, 0.05];
        let mut residual = vec![0.0f32; 4];
        let mut transmitted = [0.0f32; 4];
        for _ in 0..16 {
            let with_fb: Vec<f32> = g.iter().zip(&residual).map(|(a, b)| a + b).collect();
            let (s, r) = top_k(&with_fb, 1);
            for (t, d) in transmitted.iter_mut().zip(s.densify()) {
                *t += d;
            }
            residual = r;
        }
        // Per-coordinate transmitted ≈ 16 · g within the final residual.
        for (t, &gi) in transmitted.iter().zip(&g) {
            assert!(
                (t - 16.0 * gi).abs() <= 16.0 * 0.5 / 16.0 + 0.6,
                "{t} vs {}",
                16.0 * gi
            );
        }
    }
}
