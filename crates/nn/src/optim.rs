//! Optimizers (SGD with momentum, Adam) and learning-rate schedules over
//! flat parameter vectors.
//!
//! The paper's evaluation trains Bert/GPT-2, which in practice use Adam
//! with LR warmup; the equivalence harness therefore supports both update
//! rules. Every operation is elementwise and deterministic, so pipelined
//! and sequential training stay bit-identical for any optimizer choice.

/// Which update rule to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// `v ← μ v + g`, `p ← p − η v`.
    Sgd {
        /// Momentum μ.
        momentum: f32,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Numerical-stability term ε.
        eps: f32,
    },
}

impl OptimizerKind {
    /// Standard Adam hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn adam() -> Self {
        OptimizerKind::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// Linear warmup to `base` over `warmup` steps, then cosine decay to
    /// `min` at `total` steps (the common transformer recipe).
    WarmupCosine {
        /// Peak learning rate.
        base: f32,
        /// Warmup steps.
        warmup: u64,
        /// Total steps for the cosine phase.
        total: u64,
        /// Final learning rate.
        min: f32,
    },
}

impl LrSchedule {
    /// Learning rate at (0-indexed) update step `t`.
    pub fn at(&self, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::WarmupCosine {
                base,
                warmup,
                total,
                min,
            } => {
                if warmup > 0 && t < warmup {
                    base * (t + 1) as f32 / warmup as f32
                } else if t >= total {
                    min
                } else {
                    let progress = (t - warmup) as f64 / (total - warmup).max(1) as f64;
                    let cos = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
                    min + (base - min) * cos as f32
                }
            }
        }
    }
}

/// Optimizer state for one flat parameter vector.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// First-moment / momentum buffer.
    m: Vec<f32>,
    /// Second-moment buffer (Adam only).
    v: Vec<f32>,
    /// Update steps taken.
    t: u64,
}

impl Optimizer {
    /// New optimizer for `num_params` parameters.
    pub fn new(kind: OptimizerKind, num_params: usize) -> Self {
        let v = match kind {
            OptimizerKind::Adam { .. } => vec![0.0; num_params],
            OptimizerKind::Sgd { .. } => Vec::new(),
        };
        Optimizer {
            kind,
            m: vec![0.0; num_params],
            v,
            t: 0,
        }
    }

    /// Apply one update with learning rate `lr`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(params.len(), grad.len());
        self.t += 1;
        match self.kind {
            OptimizerKind::Sgd { momentum } => {
                for ((p, m), &g) in params.iter_mut().zip(&mut self.m).zip(grad) {
                    *m = momentum * *m + g;
                    *p -= lr * *m;
                }
            }
            OptimizerKind::Adam { beta1, beta2, eps } => {
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for (((p, m), v), &g) in params
                    .iter_mut()
                    .zip(&mut self.m)
                    .zip(&mut self.v)
                    .zip(grad)
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let mhat = *m / bc1;
                    let vhat = *v / bc2;
                    *p -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }

    /// Update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The update rule this optimizer applies.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Borrow the raw state: first-moment buffer, second-moment buffer
    /// (empty for SGD), and update-step count — everything a checkpoint
    /// needs for a bit-exact restart.
    pub fn state(&self) -> (&[f32], &[f32], u64) {
        (&self.m, &self.v, self.t)
    }

    /// Rebuild an optimizer from checkpointed state (inverse of
    /// [`Optimizer::state`]). `v` must be empty for SGD and `m.len()` long
    /// for Adam.
    pub fn from_state(kind: OptimizerKind, m: Vec<f32>, v: Vec<f32>, t: u64) -> Self {
        match kind {
            OptimizerKind::Sgd { .. } => assert!(v.is_empty(), "SGD carries no second moment"),
            OptimizerKind::Adam { .. } => {
                assert_eq!(v.len(), m.len(), "Adam moments must have equal length");
            }
        }
        Optimizer { kind, m, v, t }
    }

    /// Number of parameters managed.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// True when managing zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }
}

/// Momentum SGD over a flat parameter vector (kept as the simple default;
/// a thin wrapper over [`Optimizer`]).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum μ.
    pub momentum: f32,
    inner: Optimizer,
}

impl Sgd {
    /// New optimizer for `num_params` parameters.
    pub fn new(lr: f32, momentum: f32, num_params: usize) -> Self {
        Sgd {
            lr,
            momentum,
            inner: Optimizer::new(OptimizerKind::Sgd { momentum }, num_params),
        }
    }

    /// Apply one update.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        self.inner.step(params, grad, self.lr);
    }

    /// Number of parameters managed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when managing zero parameters.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1, 0.0, 2);
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, 2.1]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.1, 0.9, 1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]); // v=1, p=-0.1
        opt.step(&mut p, &[1.0]); // v=1.9, p=-0.29
        assert!((p[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_signed() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut opt = Optimizer::new(OptimizerKind::adam(), 2);
        let mut p = vec![0.0, 0.0];
        opt.step(&mut p, &[0.5, -3.0], 0.01);
        assert!((p[0] + 0.01).abs() < 1e-4, "{}", p[0]);
        assert!((p[1] - 0.01).abs() < 1e-4, "{}", p[1]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x-3)².
        let mut opt = Optimizer::new(OptimizerKind::adam(), 1);
        let mut p = vec![0.0f32];
        for _ in 0..2000 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g], 0.05);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "{}", p[0]);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            base: 1.0,
            warmup: 10,
            total: 110,
            min: 0.1,
        };
        // Warmup is linear.
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        // Peak at end of warmup, decays after.
        assert!(s.at(10) <= 1.0 + 1e-6);
        assert!(s.at(60) < s.at(10));
        assert!(s.at(60) > s.at(100));
        // Floor at min.
        assert!((s.at(110) - 0.1).abs() < 1e-6);
        assert!((s.at(10_000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(LrSchedule::Constant(0.3).at(0), 0.3);
        assert_eq!(LrSchedule::Constant(0.3).at(999), 0.3);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Sgd::new(0.1, 0.0, 5).len(), 5);
        assert!(Sgd::new(0.1, 0.0, 0).is_empty());
        let o = Optimizer::new(OptimizerKind::adam(), 3);
        assert_eq!(o.len(), 3);
        assert_eq!(o.steps(), 0);
    }
}
