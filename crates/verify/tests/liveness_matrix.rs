//! The liveness dataflow engine across the full scheme matrix.
//!
//! 1. Exact-vs-executor: the engine's activation peak equals both the
//!    incremental replay in `verify::memory` and the unit-time executor's
//!    measured `peak_activations`, for all 9 schemes × D ∈ {2, 4, 8}.
//! 2. Exact ≤ coarse: the exact byte peak never exceeds the coarse Table-2
//!    bound it replaces, and the recovered slack ratio is reported.
//! 3. Determinism: linear-scan slot assignment and the whole `memory_v2`
//!    report are identical across repeated runs and across threads.
//! 4. Off-by-one boundary: live ranges that abut at exactly one op (a
//!    rematerialization whose def == kill is the op that also kills the
//!    boundary stash) interfere and are both counted at the peak.

use chimera_core::named::build_named;
use chimera_core::unit_time::{execute, UnitCosts};
use chimera_sim::{AllReduceAlgo, NetworkModel, SimCostModel, StageCosts, Topology};
use chimera_verify::liveness::{analyze, assign_slots, ActivationSizes, BufferKind, SimSizes};
use chimera_verify::{memory_v2, verify_with_memory};

const SCHEMES: [&str; 9] = [
    "gpipe",
    "dapple",
    "gems",
    "pipedream",
    "pipedream-2bw",
    "chimera",
    "chimera-f2",
    "doubling",
    "halving",
];

fn matrix() -> Vec<(&'static str, u32, chimera_core::schedule::Schedule)> {
    let mut out = Vec::new();
    for scheme in SCHEMES {
        for d in [2u32, 4, 8] {
            if scheme == "chimera-f2" && (d / 2) % 2 != 0 {
                continue; // f=2 requires f | D/2
            }
            let s = build_named(scheme, d, 2 * d).expect("known scheme");
            out.push((scheme, d, s));
        }
    }
    out
}

fn cost(d: u32) -> SimCostModel {
    SimCostModel {
        stages: vec![
            StageCosts {
                fwd_s: 1e-3,
                bwd_s: 2e-3,
                recompute_s: 1e-3,
                boundary_bytes: 1 << 20,
                act_bytes: 8 << 20,
                param_bytes: 100 << 20,
                grad_opt_bytes: 200 << 20,
            };
            d as usize
        ],
        network: NetworkModel::cray_aries(),
        topology: Topology::one_per_node(d),
        allreduce_participants: 2,
        allreduce_algo: AllReduceAlgo::Rabenseifner,
        allreduce_beta_factor: 1.0,
        launch_overhead_s: 0.0,
        half_chunk_penalty: 1.0,
        comm_compute_interference: 0.0,
        p2p_host_overhead_s: 0.0,
        p2p_host_s_per_byte: 0.0,
        grad_compression: 1.0,
    }
}

#[test]
fn exact_activation_peak_matches_replay_and_executor_across_matrix() {
    let costs = UnitCosts::equal();
    for (scheme, d, s) in matrix() {
        let replay = chimera_verify::memory::static_peak_activations(&s, &costs);
        let engine = analyze(&s, &ActivationSizes(&costs));
        assert!(
            engine.diagnostics.is_empty(),
            "{scheme} D={d}: {:?}",
            engine.diagnostics
        );
        let tl = execute(&s, costs).expect("matrix schedules execute");
        for w in 0..s.num_workers() {
            assert!(
                (engine.peak[w] - replay.units[w]).abs() < 1e-9,
                "{scheme} D={d} P{w}: engine {} vs replay {}",
                engine.peak[w],
                replay.units[w]
            );
            assert!(
                (engine.peak[w] - tl.peak_activations[w]).abs() < 1e-9,
                "{scheme} D={d} P{w}: engine {} vs executor {}",
                engine.peak[w],
                tl.peak_activations[w]
            );
            assert_eq!(engine.cliff[w], replay.peak_op[w], "{scheme} D={d} P{w}");
        }
    }
}

#[test]
fn exact_peak_never_exceeds_coarse_bound_and_reports_slack() {
    for (scheme, d, s) in matrix() {
        let c = cost(d);
        let mem = memory_v2(&s, &c);
        for (w, wm) in mem.workers.iter().enumerate() {
            assert!(
                wm.exact_peak_bytes <= wm.coarse_bound_bytes,
                "{scheme} D={d} P{w}: exact {} > coarse {}",
                wm.exact_peak_bytes,
                wm.coarse_bound_bytes
            );
            assert!(
                wm.slack_ratio >= 1.0,
                "{scheme} D={d} P{w}: slack {}",
                wm.slack_ratio
            );
            assert_eq!(
                wm.exact_peak_bytes,
                wm.resident_bytes + wm.dynamic_peak_bytes
            );
        }
        // The cross-check lint stays silent on every sound schedule, and the
        // report carries the memory/v2 section.
        let report = verify_with_memory(&s, 1, &c, u64::MAX);
        assert!(
            report
                .diagnostics
                .iter()
                .all(|di| di.code != "coarse_bound_exceeded"),
            "{scheme} D={d}"
        );
        assert!(report.memory_v2.is_some());
    }
}

#[test]
fn two_bw_recovers_real_slack_while_table2_is_tight_for_pipedream() {
    // PipeDream's Table-2 bound (D−s versions at stage s) is *exactly*
    // attained in the copy-on-update steady state — the exact analysis
    // validates the paper's accounting to the byte. PipeDream-2BW's
    // double-buffer bound, in contrast, over-charges: the second buffer is
    // live only between an update and the draining of the micros that
    // reference the superseded version, so the exact analysis recovers
    // planner headroom.
    let pd = memory_v2(&build_named("pipedream", 4, 8).unwrap(), &cost(4));
    for wm in &pd.workers {
        assert_eq!(
            wm.exact_peak_bytes, wm.coarse_bound_bytes,
            "Table 2 should be tight for pipedream: {wm:?}"
        );
    }
    let bw = memory_v2(&build_named("pipedream-2bw", 4, 8).unwrap(), &cost(4));
    for wm in &bw.workers {
        assert!(
            wm.slack_ratio > 1.25,
            "expected ≥25% recovered headroom, got {wm:?}"
        );
    }
}

#[test]
fn slot_assignment_is_deterministic_across_runs_and_threads() {
    let s = build_named("chimera", 4, 8).unwrap();
    let c = cost(4);
    let lives = analyze(&s, &SimSizes(&c)).lives;
    let intervals: Vec<(usize, usize)> = lives
        .iter()
        .flat_map(|wl| wl.iter().map(|b| (b.def, b.kill)))
        .collect();
    let golden_slots = assign_slots(&intervals);
    let golden_mem = memory_v2(&s, &c);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let intervals = intervals.clone();
            std::thread::spawn(move || {
                let s = build_named("chimera", 4, 8).unwrap();
                let c = cost(4);
                (assign_slots(&intervals), memory_v2(&s, &c))
            })
        })
        .collect();
    for t in threads {
        let (slots, mem) = t.join().unwrap();
        assert_eq!(slots, golden_slots);
        assert_eq!(mem, golden_mem);
    }
    for _ in 0..10 {
        assert_eq!(assign_slots(&intervals), golden_slots);
    }
}

#[test]
fn remat_and_boundary_stash_abut_at_the_backward_op() {
    // Forward doubling with recomputation: at each recomputing backward the
    // rematerialization buffer (def == kill == that op) and the boundary
    // stash it consumes (killed by that op) are live *simultaneously* — the
    // classic off-by-one boundary. The engine must count both at that op.
    let s = build_named("doubling", 4, 8).unwrap();
    let mut costs = UnitCosts::practical();
    costs.recompute_stash_fraction = 0.25;
    let engine = analyze(&s, &ActivationSizes(&costs));
    let mut checked = 0;
    for (w, wl) in engine.lives.iter().enumerate() {
        for remat in wl.iter().filter(|b| b.kind == BufferKind::Remat) {
            let stash = wl
                .iter()
                .find(|b| {
                    b.kind == BufferKind::Stash
                        && b.replica == remat.replica
                        && b.stage == remat.stage
                        && b.kill == remat.def
                })
                .unwrap_or_else(|| panic!("P{w}: remat at op {} has no dying stash", remat.def));
            assert!(stash.interferes(remat), "abutting ranges must interfere");
            assert_ne!(
                stash.def, stash.kill,
                "boundary stash lives from forward to backward"
            );
            // Both occupy distinct slots even though they share only one op.
            let slots = assign_slots(&[(stash.def, stash.kill), (remat.def, remat.kill)]);
            assert_ne!(slots[0], slots[1]);
            checked += 1;
        }
    }
    assert!(checked > 0, "doubling must produce recomputing backwards");
}
