//! Synchronous vs asynchronous pipelining, on real training: Chimera
//! (synchronous, = mini-batch SGD) against PipeDream (asynchronous,
//! per-micro updates with stashed weights). Both run on real threads; the
//! demo shows (1) the synchronous run is bit-identical to sequential SGD,
//! (2) the asynchronous run is *not* — the staleness Table 2's
//! "convergence friendly" column is about.
//!
//! ```sh
//! cargo run --release --example async_vs_sync
//! ```

use chimera::core::baselines::pipedream_steady;
use chimera::core::chimera::{chimera, ChimeraConfig};
use chimera::nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera::runtime::{train, TrainOptions};

fn main() {
    let d = 4u32;
    let n = 4u32;
    let iterations = 10u32;
    let cfg = ModelConfig {
        layers: 4,
        hidden: 24,
        heads: 3,
        seq: 6,
        vocab: 41,
        causal: true,
        seed: 5,
    };
    let opts = TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 13,
        ..TrainOptions::default()
    };

    // Synchronous: Chimera.
    let sync = train(
        &chimera(&ChimeraConfig::new(d, n)).unwrap(),
        cfg,
        opts.clone(),
    )
    .expect("training succeeds");

    // Asynchronous: PipeDream steady state over the same number of
    // micro-batches (one unrolled span; per-micro stale updates).
    let async_opts = TrainOptions {
        iterations: 1,
        ..opts.clone()
    };
    let async_sched = pipedream_steady(d, n, iterations);
    let asynchronous = train(&async_sched, cfg, async_opts).expect("training succeeds");

    // Sequential mini-batch SGD reference.
    let mut reference = ReferenceTrainer::new(
        Stage::build_all(cfg, d),
        SyntheticData::new(cfg, opts.data_seed),
        opts.micro_batch,
        opts.lr,
        opts.momentum,
    );
    let mut ref_losses = Vec::new();
    for it in 0..iterations {
        ref_losses.push(reference.train_iteration(it as u64 * n as u64, n));
    }

    println!("iter   reference-SGD   Chimera(sync)");
    for (i, (r, c)) in ref_losses.iter().zip(&sync.iteration_losses).enumerate() {
        println!("{i:>4}   {r:>12.5}   {c:>12.5}");
    }
    assert_eq!(
        sync.flat_params(),
        reference.flat_params(),
        "synchronous pipelining must be bit-identical to SGD"
    );
    println!("\n✓ Chimera == sequential SGD, bit for bit");

    let max_dev = sync
        .flat_params()
        .iter()
        .zip(asynchronous.flat_params())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_dev > 0.0);
    println!(
        "✗ PipeDream (async, weight stashing) deviates from SGD: max |Δparam| = {max_dev:.6}\n  \
         — stale per-micro updates change the training trajectory (Table 2)."
    );
}
