//! Criterion: tensor-kernel throughput (the compute substrate of the real
//! training runtime).

// criterion_group! expands to an undocumented public fn.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use chimera_tensor::{gelu, layernorm, softmax_rows, Rng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut rng = Rng::new(1);
        let a = Tensor::normal(n, n, 1.0, &mut rng);
        let b = Tensor::normal(n, n, 1.0, &mut rng);
        g.bench_with_input(BenchmarkId::new("square", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a).matmul(black_box(b)));
        });
    }
    g.finish();
}

fn bench_pointwise(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let x = Tensor::normal(256, 256, 1.0, &mut rng);
    let gamma = vec![1.0f32; 256];
    let beta = vec![0.0f32; 256];
    let mut g = c.benchmark_group("pointwise_256x256");
    g.bench_function("softmax_rows", |b| b.iter(|| softmax_rows(black_box(&x))));
    g.bench_function("gelu", |b| b.iter(|| gelu(black_box(&x))));
    g.bench_function("layernorm", |b| {
        b.iter(|| layernorm(black_box(&x), &gamma, &beta));
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_pointwise);
criterion_main!(benches);
