//! Token + position embedding (the extra weights of pipeline stage 0 that
//! cause the memory imbalance discussed in §4.1).

use chimera_tensor::{Rng, Tensor};

/// Token embedding table plus learned position embeddings.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// `[vocab, hidden]` token table.
    pub table: Tensor,
    /// `[seq, hidden]` position table.
    pub pos: Tensor,
}

impl Embedding {
    /// Normal(0, 0.02)-initialized embedding.
    pub fn new(vocab: usize, seq: usize, hidden: usize, rng: &mut Rng) -> Self {
        Embedding {
            table: Tensor::normal(vocab, hidden, 0.02, rng),
            pos: Tensor::normal(seq, hidden, 0.02, rng),
        }
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.table.len() + self.pos.len()
    }

    /// Forward: `tokens` are `batch * seq` ids, row `i` of the output is
    /// `table[tokens[i]] + pos[i mod seq]`.
    pub fn forward(&self, tokens: &[u32], seq: usize) -> Tensor {
        assert_eq!(tokens.len() % seq, 0, "tokens must be whole sequences");
        let h = self.table.cols();
        let mut out = Tensor::zeros(tokens.len(), h);
        for (i, &t) in tokens.iter().enumerate() {
            let trow = self.table.row(t as usize);
            let prow = self.pos.row(i % seq);
            for ((o, &a), &b) in out.row_mut(i).iter_mut().zip(trow).zip(prow) {
                *o = a + b;
            }
        }
        out
    }

    /// Backward: scatter-add `dy` into the token/position tables' gradient
    /// (flat layout `[table.., pos..]`).
    pub fn backward(&self, tokens: &[u32], seq: usize, dy: &Tensor, grad: &mut [f32]) {
        assert_eq!(grad.len(), self.num_params());
        let h = self.table.cols();
        let (tg, pg) = grad.split_at_mut(self.table.len());
        for (i, &t) in tokens.iter().enumerate() {
            let dyr = dy.row(i);
            let trow = &mut tg[t as usize * h..(t as usize + 1) * h];
            for (g, &v) in trow.iter_mut().zip(dyr) {
                *g += v;
            }
            let p = i % seq;
            let prow = &mut pg[p * h..(p + 1) * h];
            for (g, &v) in prow.iter_mut().zip(dyr) {
                *g += v;
            }
        }
    }

    /// Append parameters (`[table.., pos..]`).
    pub fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.table.data());
        out.extend_from_slice(self.pos.data());
    }

    /// Load parameters; returns the remaining slice.
    pub fn read_params<'a>(&mut self, flat: &'a [f32]) -> &'a [f32] {
        let tl = self.table.len();
        self.table.data_mut().copy_from_slice(&flat[..tl]);
        let pl = self.pos.len();
        self.pos.data_mut().copy_from_slice(&flat[tl..tl + pl]);
        &flat[tl + pl..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_sums_token_and_pos() {
        let mut e = Embedding::new(4, 2, 3, &mut Rng::new(0));
        e.table = Tensor::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        e.pos = Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let y = e.forward(&[2, 0], 2);
        // Row 0: table[2] + pos[0] = [6,7,8] + [0.1,0.2,0.3].
        assert_eq!(y.row(0), &[6.1, 7.2, 8.3]);
        // Row 1: table[0] + pos[1].
        assert_eq!(y.row(1), &[0.4, 1.5, 2.6]);
    }

    #[test]
    fn backward_scatter_adds() {
        let e = Embedding::new(4, 2, 2, &mut Rng::new(1));
        let tokens = vec![1u32, 1, 3, 0]; // two sequences of length 2
        let dy = Tensor::from_vec(4, 2, vec![1.0; 8]);
        let mut grad = vec![0.0; e.num_params()];
        e.backward(&tokens, 2, &dy, &mut grad);
        // Token 1 appears twice: its table-grad rows accumulate to 2.
        let h = 2;
        assert_eq!(&grad[h..2 * h], &[2.0, 2.0]);
        // Token 2 never appears.
        assert_eq!(&grad[2 * h..3 * h], &[0.0, 0.0]);
        // Position 0 appears twice (rows 0 and 2).
        let pg = &grad[e.table.len()..];
        assert_eq!(&pg[..h], &[2.0, 2.0]);
    }

    #[test]
    fn param_roundtrip() {
        let e = Embedding::new(5, 3, 4, &mut Rng::new(2));
        let mut flat = Vec::new();
        e.write_params(&mut flat);
        let mut e2 = Embedding::new(5, 3, 4, &mut Rng::new(9));
        assert!(e2.read_params(&flat).is_empty());
        assert_eq!(e2.table, e.table);
        assert_eq!(e2.pos, e.pos);
    }

    #[test]
    #[should_panic(expected = "whole sequences")]
    fn ragged_tokens_rejected() {
        let e = Embedding::new(4, 2, 2, &mut Rng::new(3));
        e.forward(&[0, 1, 2], 2);
    }
}
