#![warn(missing_docs)]

//! # chimera-trace
//!
//! Structured tracing and metrics for the Chimera workspace — the
//! observability layer shared by the discrete-event simulator and the real
//! multi-threaded training runtime.
//!
//! * [`event`] — the event model: [`SpanEvent`]s (one interval of work on one
//!   worker track, tagged with stage/replica/micro-batch and an op kind) and
//!   [`CounterEvent`]s;
//! * [`sink`] — the [`TraceSink`] trait plus [`BufferSink`] (sharded,
//!   low-contention collector for worker threads) and [`NullSink`];
//! * [`metrics`] — a [`MetricsRegistry`] of named atomic [`Counter`]s and
//!   log2-bucketed [`Histogram`]s with a JSON [`MetricsRegistry::snapshot`];
//! * [`chrome`] — Chrome trace-event JSON export, loadable by
//!   `chrome://tracing` and Perfetto: one track per worker, spans colored by
//!   op kind (forward / backward / p2p / allreduce / idle);
//! * [`jsonl`] — compact one-object-per-line event log.
//!
//! ## Zero cost when disabled
//!
//! Producers hold an `Option` of a sink and skip *all* instrumentation —
//! event construction and clock reads included — when it is `None`. The
//! `trace_overhead` bench in `chimera-bench` holds this contract in place.

pub mod chrome;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod sink;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use event::{CounterEvent, Event, SpanEvent, SpanKind};
pub use jsonl::{events_to_jsonl, parse_jsonl, read_jsonl, write_jsonl, write_jsonl_to};
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use sink::{now_ns, BufferSink, NullSink, TraceSink};
