//! End-to-end determinism across intra-op thread counts and pool state.
//!
//! The kernel layer fixes the per-element reduction order regardless of
//! tiling or thread partitioning, and the buffer pool recycles capacity but
//! never contents. Consequence: the *same schedule* trained with different
//! `TrainOptions::threads` values — or with pooling disabled — must produce
//! bit-identical parameters. This is the property that lets operators tune
//! `CHIMERA_THREADS` per host without invalidating replica verification or
//! checkpoint replay.

use chimera_core::chimera::{chimera, ChimeraConfig};
use chimera_nn::ModelConfig;
use chimera_runtime::{train, TrainOptions};
use chimera_tensor::pool;

fn opts(threads: usize) -> TrainOptions {
    TrainOptions {
        micro_batch: 2,
        iterations: 3,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 321,
        threads: Some(threads),
        ..TrainOptions::default()
    }
}

fn run(threads: usize) -> (Vec<f32>, Vec<f32>) {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 4)).unwrap();
    let r = train(&sched, cfg, opts(threads)).expect("training succeeds");
    (r.flat_params(), r.iteration_losses.clone())
}

fn as_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn thread_count_does_not_change_checkpoints() {
    let (p1, l1) = run(1);
    for threads in [4usize, 8] {
        let (p, l) = run(threads);
        assert_eq!(
            as_bits(&p),
            as_bits(&p1),
            "params diverged at {threads} threads"
        );
        assert_eq!(
            as_bits(&l),
            as_bits(&l1),
            "losses diverged at {threads} threads"
        );
    }
}

#[test]
fn pool_state_does_not_change_checkpoints() {
    let (with_pool, _) = run(2);
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 4)).unwrap();
    let o = TrainOptions {
        pool: false,
        ..opts(2)
    };
    let r = train(&sched, cfg, o).expect("training succeeds");
    // train() restores pooling per its own option on the next call; re-enable
    // here so concurrently-running tests in this binary see the default.
    pool::set_enabled(true);
    assert_eq!(
        as_bits(&r.flat_params()),
        as_bits(&with_pool),
        "disabling the pool changed numeric results"
    );
}
