//! Gradient-synchronization placement (§3.2, Fig. 4).
//!
//! After the compute schedule is fixed, allreduce launch/wait markers are
//! inserted per strategy:
//!
//! * **post-hoc** — all stages synchronize after local compute (Fig. 4(a));
//! * **eager** — every stage's allreduce launches right after its last local
//!   backward, exploiting non-blocking collectives (Fig. 4(b));
//! * **eager-opt** — eager only where a bubble follows the stage's last
//!   backward; middle stages, whose gradients finish last with no bubble to
//!   hide the collective, synchronize post-hoc. The paper shows this avoids
//!   the launch overhead extending the critical path (Fig. 12).

use crate::ids::WorkerId;
use crate::op::Op;
use crate::schedule::{Schedule, SyncStrategy};
use crate::unit_time::{execute, UnitCosts};

/// Insert allreduce ops into `sched` per `strategy`. Any existing sync ops
/// are removed first. `costs` drives the timing analysis used by
/// [`SyncStrategy::EagerOpt`].
pub fn place_sync(mut sched: Schedule, strategy: SyncStrategy, costs: UnitCosts) -> Schedule {
    sched.strip_sync();
    match strategy {
        SyncStrategy::None => {
            return sched;
        }
        SyncStrategy::PostHoc => {
            for w in 0..sched.num_workers() {
                let order = sync_order(&sched, w);
                let ops = &mut sched.workers[w];
                for &(r, s, _) in &order {
                    ops.push(Op::allreduce_launch(s, r));
                }
                for &(r, s, _) in &order {
                    ops.push(Op::allreduce_wait(s, r));
                }
            }
        }
        SyncStrategy::Eager => {
            for w in 0..sched.num_workers() {
                insert_eager(&mut sched, w, |_, _| true);
            }
        }
        SyncStrategy::EagerOpt => {
            let tl = execute(&sched, costs)
                .expect("compute schedule must execute before sync placement");
            // Eager only where idle time follows the stage's last backward.
            let mut eager_masks: Vec<Vec<bool>> = Vec::with_capacity(sched.num_workers());
            for w in 0..sched.num_workers() {
                let wid = WorkerId(w as u32);
                let order = sync_order(&sched, w);
                let end = tl.last_compute_finish(wid);
                let mask = order
                    .iter()
                    .map(|&(r, s, _)| {
                        // Replicas without local backwards contribute nothing
                        // and sync post-hoc.
                        let Some(t) = tl.last_backward_finish(wid, r, s) else {
                            return false;
                        };
                        let busy_after: u64 = tl.spans[w]
                            .iter()
                            .filter(|sp| sp.op.is_compute() && sp.start >= t)
                            .map(|sp| sp.finish - sp.start)
                            .sum();
                        (end - t) > busy_after
                    })
                    .collect();
                eager_masks.push(mask);
            }
            #[allow(clippy::needless_range_loop)] // indices address two structures
            for w in 0..sched.num_workers() {
                let mask = eager_masks[w].clone();
                let mut i = 0;
                insert_eager(&mut sched, w, move |_, _| {
                    let eager = mask[i];
                    i += 1;
                    eager
                });
            }
        }
    }
    sched.sync = strategy;
    sched.assert_well_formed();
    sched
}

/// Stage replicas a worker holds in sync order: replicas with local
/// backwards in last-backward order, then (for completeness) held replicas
/// with no compute at all — e.g. the up pipeline's stages when `N = 1` runs
/// on the down pipeline only. Those must still join their stage's allreduce
/// (their weight copy has to stay synchronized), contributing nothing.
fn sync_order(
    sched: &Schedule,
    w: usize,
) -> Vec<(crate::ids::ReplicaId, crate::ids::StageId, usize)> {
    let wid = WorkerId(w as u32);
    let mut order = sched.stage_replicas_by_last_backward(wid);
    let tail_idx = sched.workers[w].len();
    for (r, s) in sched.placement.held_by(wid) {
        if !order.iter().any(|&(or, os, _)| or == r && os == s) {
            order.push((r, s, tail_idx));
        }
    }
    order
}

/// Insert eager launches (right after each stage replica's last backward)
/// where `eager(replica, stage)` says so — called once per stage replica in
/// last-backward order — and post-hoc launches plus all waits at the end.
fn insert_eager<F>(sched: &mut Schedule, w: usize, mut eager: F)
where
    F: FnMut(crate::ids::ReplicaId, crate::ids::StageId) -> bool,
{
    let order = sync_order(sched, w);
    let ops = &mut sched.workers[w];
    // Insert from the back so recorded indices stay valid.
    let mut post_hoc = Vec::new();
    let mut eager_inserts: Vec<(usize, Op)> = Vec::new();
    for &(r, s, last_idx) in &order {
        if eager(r, s) {
            eager_inserts.push((last_idx + 1, Op::allreduce_launch(s, r)));
        } else {
            post_hoc.push((r, s));
        }
    }
    eager_inserts.sort_by_key(|&(i, _)| std::cmp::Reverse(i));
    for (i, op) in eager_inserts {
        ops.insert(i, op);
    }
    for &(r, s) in &post_hoc {
        ops.push(Op::allreduce_launch(s, r));
    }
    // Waits at the very end, in last-backward order.
    for &(r, s, _) in &order {
        ops.push(Op::allreduce_wait(s, r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chimera::{chimera, ChimeraConfig};
    use crate::ids::{ReplicaId, StageId};
    use crate::op::OpKind;

    fn sched() -> Schedule {
        chimera(&ChimeraConfig::new(4, 4)).unwrap()
    }

    fn launches_and_waits(s: &Schedule, w: usize) -> (usize, usize) {
        let l = s.workers[w]
            .iter()
            .filter(|o| o.kind == OpKind::AllReduceLaunch)
            .count();
        let wt = s.workers[w]
            .iter()
            .filter(|o| o.kind == OpKind::AllReduceWait)
            .count();
        (l, wt)
    }

    #[test]
    fn post_hoc_places_all_sync_at_end() {
        let s = place_sync(sched(), SyncStrategy::PostHoc, UnitCosts::practical());
        for w in 0..4 {
            let (l, wt) = launches_and_waits(&s, w);
            assert_eq!((l, wt), (2, 2), "two stage replicas per worker");
            // The last 4 ops are exactly the sync ops.
            let tail = &s.workers[w][s.workers[w].len() - 4..];
            assert!(tail.iter().all(|o| !o.is_compute()));
        }
        execute(&s, UnitCosts::practical()).unwrap();
    }

    #[test]
    fn eager_launches_follow_last_backward() {
        let s = place_sync(sched(), SyncStrategy::Eager, UnitCosts::practical());
        for w in 0..4usize {
            let ops = &s.workers[w];
            for (i, op) in ops.iter().enumerate() {
                if op.kind == OpKind::AllReduceLaunch {
                    // No backward of the same (replica, stage) after the launch.
                    assert!(!ops[i + 1..].iter().any(|o| o.is_backward()
                        && o.stage == op.stage
                        && o.replica == op.replica));
                }
            }
        }
        execute(&s, UnitCosts::practical()).unwrap();
    }

    /// Fig. 5's sync pattern for D=4: on P0, stage 3 (the up replica) is
    /// synchronized eagerly — its backwards finish mid-schedule, followed by
    /// bubbles — while stage 0, which finishes last, is not.
    #[test]
    fn eager_opt_matches_figure5_pattern() {
        let s = place_sync(sched(), SyncStrategy::EagerOpt, UnitCosts::practical());
        let ops = &s.workers[0];
        let launch_s3 = ops
            .iter()
            .position(|o| o.kind == OpKind::AllReduceLaunch && o.stage == StageId(3))
            .unwrap();
        let launch_s0 = ops
            .iter()
            .position(|o| o.kind == OpKind::AllReduceLaunch && o.stage == StageId(0))
            .unwrap();
        // S3 launch is eager (before the final backwards), S0 post-hoc (after).
        let last_backward = ops
            .iter()
            .rposition(super::super::op::Op::is_backward)
            .unwrap();
        assert!(launch_s3 < last_backward, "stage3 synced eagerly");
        assert!(launch_s0 > last_backward, "stage0 synced post-hoc");
        execute(&s, UnitCosts::practical()).unwrap();
    }

    /// Middle workers (P1, P2) have no bubble after their stages' last
    /// backwards, so eager-opt must not launch eagerly there.
    #[test]
    fn eager_opt_leaves_middle_stages_post_hoc() {
        let s = place_sync(sched(), SyncStrategy::EagerOpt, UnitCosts::practical());
        for w in [1usize, 2] {
            let ops = &s.workers[w];
            let last_backward = ops
                .iter()
                .rposition(super::super::op::Op::is_backward)
                .unwrap();
            for (i, op) in ops.iter().enumerate() {
                if op.kind == OpKind::AllReduceLaunch {
                    assert!(
                        i > last_backward,
                        "worker {w}: middle stage launched eagerly at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_launch_has_matching_wait() {
        for strat in [
            SyncStrategy::PostHoc,
            SyncStrategy::Eager,
            SyncStrategy::EagerOpt,
        ] {
            let s = place_sync(sched(), strat, UnitCosts::practical());
            for w in 0..4 {
                let (l, wt) = launches_and_waits(&s, w);
                assert_eq!(l, wt, "strategy {strat:?} worker {w}");
            }
        }
    }

    #[test]
    fn replace_strategy_strips_previous_ops() {
        let s = place_sync(sched(), SyncStrategy::Eager, UnitCosts::practical());
        let s = place_sync(s, SyncStrategy::PostHoc, UnitCosts::practical());
        for w in 0..4 {
            let (l, wt) = launches_and_waits(&s, w);
            assert_eq!((l, wt), (2, 2));
        }
        let _ = (ReplicaId(0), StageId(0)); // silence unused-import lints in cfg(test)
    }
}
