//! Bounded plan cache with single-flight coalescing.
//!
//! The cache maps canonical query keys (see `PlanQuery::key`) to finished
//! plan responses, evicting least-recently-used entries past the capacity.
//! The *inflight* side is what makes a thundering herd cheap: the first
//! request for a key becomes the **owner** and runs the search; identical
//! requests arriving meanwhile attach to the owner's [`Flight`] and are all
//! answered by the one search when it completes. Failed searches complete
//! their flight with the error but are never inserted into the ready map —
//! errors are not cacheable answers.
//!
//! The waiter type `W` is generic (the engine attaches responders; tests
//! attach channels) so coalescing is testable without sockets.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::Value;

use crate::error::ServeError;

/// Outcome a flight completes with: the shared response, or the error every
/// coalesced waiter receives.
pub type Outcome = Result<Arc<Value>, ServeError>;

/// One in-flight search that identical queries coalesce onto.
pub struct Flight<W> {
    state: Mutex<FlightState<W>>,
}

struct FlightState<W> {
    done: Option<Outcome>,
    waiters: Vec<W>,
}

impl<W> Flight<W> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState {
                done: None,
                waiters: Vec::new(),
            }),
        }
    }

    /// Attach a waiter. If the flight already completed (the owner finished
    /// between claim and attach), the waiter is handed back together with
    /// the outcome so the caller answers it immediately; otherwise it is
    /// stored and will be drained by the owner's [`PlanCache::fulfill`].
    pub fn attach(&self, w: W) -> Result<(), (W, Outcome)> {
        let mut st = self.state.lock();
        match &st.done {
            Some(outcome) => Err((w, outcome.clone())),
            None => {
                st.waiters.push(w);
                Ok(())
            }
        }
    }

    fn complete(&self, outcome: Outcome) -> Vec<W> {
        let mut st = self.state.lock();
        st.done = Some(outcome);
        std::mem::take(&mut st.waiters)
    }
}

/// What `lookup_or_claim` resolved a key to.
pub enum Claim<W> {
    /// Cached answer, ready now.
    Hit(Arc<Value>),
    /// Nobody is searching this key: the caller owns the search and must
    /// call [`PlanCache::fulfill`] exactly once.
    Owner,
    /// Someone else is already searching: attach to their flight.
    Wait(Arc<Flight<W>>),
}

/// Bounded LRU plan cache + single-flight table.
pub struct PlanCache<W> {
    cap: usize,
    inner: Mutex<CacheInner<W>>,
}

struct CacheInner<W> {
    ready: HashMap<String, Arc<Value>>,
    /// LRU order: front = coldest, back = hottest.
    order: VecDeque<String>,
    inflight: HashMap<String, Arc<Flight<W>>>,
}

impl<W> PlanCache<W> {
    /// A cache holding at most `cap` ready entries (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            inner: Mutex::new(CacheInner {
                ready: HashMap::new(),
                order: VecDeque::new(),
                inflight: HashMap::new(),
            }),
        }
    }

    /// Resolve `key`: a ready hit (bumped to hottest), a claim to search it,
    /// or the existing flight to coalesce onto.
    pub fn lookup_or_claim(&self, key: &str) -> Claim<W> {
        let mut inner = self.inner.lock();
        if let Some(v) = inner.ready.get(key).cloned() {
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                inner.order.remove(pos);
                inner.order.push_back(key.to_string());
            }
            return Claim::Hit(v);
        }
        if let Some(flight) = inner.inflight.get(key) {
            return Claim::Wait(flight.clone());
        }
        inner
            .inflight
            .insert(key.to_string(), Arc::new(Flight::new()));
        Claim::Owner
    }

    /// Complete the search for `key`: cache the response (successes only),
    /// retire the flight, and return every coalesced waiter so the caller
    /// can answer them. Must be called exactly once per `Claim::Owner`.
    pub fn fulfill(&self, key: &str, outcome: Outcome) -> Vec<W> {
        let flight = {
            let mut inner = self.inner.lock();
            let flight = inner.inflight.remove(key);
            if let Ok(v) = &outcome {
                if inner.ready.insert(key.to_string(), v.clone()).is_none() {
                    inner.order.push_back(key.to_string());
                }
                while inner.ready.len() > self.cap {
                    let Some(coldest) = inner.order.pop_front() else {
                        break;
                    };
                    inner.ready.remove(&coldest);
                }
            }
            flight
        };
        flight.map_or_else(Vec::new, |f| f.complete(outcome))
    }

    /// Ready entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().ready.len()
    }

    /// Whether the ready map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` has a ready entry (test/introspection hook; does not
    /// bump LRU order).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().ready.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: u64) -> Arc<Value> {
        Arc::new(serde_json::json!({"n": n}))
    }

    fn own_and_fill(cache: &PlanCache<u32>, key: &str, n: u64) {
        assert!(matches!(cache.lookup_or_claim(key), Claim::Owner));
        let waiters = cache.fulfill(key, Ok(val(n)));
        assert!(waiters.is_empty());
    }

    #[test]
    fn eviction_is_bounded_and_lru() {
        let cache: PlanCache<u32> = PlanCache::new(2);
        own_and_fill(&cache, "a", 1);
        own_and_fill(&cache, "b", 2);
        assert_eq!(cache.len(), 2);
        // Touch "a" so "b" becomes the coldest entry.
        assert!(matches!(cache.lookup_or_claim("a"), Claim::Hit(_)));
        own_and_fill(&cache, "c", 3);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains("a") && cache.contains("c"));
        assert!(!cache.contains("b"), "LRU entry must be the one evicted");
    }

    #[test]
    fn single_flight_coalesces_and_drains_waiters() {
        let cache: PlanCache<u32> = PlanCache::new(4);
        assert!(matches!(cache.lookup_or_claim("k"), Claim::Owner));
        // Concurrent identical queries attach to the one flight.
        for w in 0..3u32 {
            match cache.lookup_or_claim("k") {
                Claim::Wait(f) => assert!(f.attach(w).is_ok()),
                _ => panic!("expected Wait"),
            }
        }
        let waiters = cache.fulfill("k", Ok(val(9)));
        assert_eq!(waiters, vec![0, 1, 2]);
        // Late arrivals now hit the ready map.
        match cache.lookup_or_claim("k") {
            Claim::Hit(v) => assert_eq!(v["n"].as_u64(), Some(9)),
            _ => panic!("expected Hit"),
        }
    }

    #[test]
    fn attach_after_completion_returns_the_outcome() {
        let cache: PlanCache<u32> = PlanCache::new(4);
        assert!(matches!(cache.lookup_or_claim("k"), Claim::Owner));
        let flight = match cache.lookup_or_claim("k") {
            Claim::Wait(f) => f,
            _ => panic!("expected Wait"),
        };
        cache.fulfill("k", Ok(val(1)));
        // The flight finished between claim and attach: the waiter comes
        // back with the outcome instead of being stranded.
        match flight.attach(7) {
            Err((7, Ok(v))) => assert_eq!(v["n"].as_u64(), Some(1)),
            _ => panic!("expected the waiter handed back with the outcome"),
        }
    }

    #[test]
    fn errors_reach_waiters_but_are_not_cached() {
        let cache: PlanCache<u32> = PlanCache::new(4);
        assert!(matches!(cache.lookup_or_claim("k"), Claim::Owner));
        match cache.lookup_or_claim("k") {
            Claim::Wait(f) => assert!(f.attach(5).is_ok()),
            _ => panic!("expected Wait"),
        }
        let waiters = cache.fulfill("k", Err(ServeError::DeadlineExceeded));
        assert_eq!(waiters, vec![5]);
        assert!(!cache.contains("k"));
        // The key is claimable again — a transient failure does not poison
        // the key.
        assert!(matches!(cache.lookup_or_claim("k"), Claim::Owner));
    }
}
