//! Binary model checkpoints.
//!
//! Long pipeline-parallel training runs checkpoint their model state; this
//! module serializes a stage-partitioned model to a compact little-endian
//! binary format and restores it bit-exactly. Restoring can re-partition:
//! a checkpoint written from a `D=4` partition can be loaded as `D=8`
//! stages (parameters are partition-independent, see [`crate::stage`]).
//!
//! Two format versions exist. Version 1 ([`save`]) stores parameters only.
//! Version 2 ([`save_state`]) appends per-parameter optimizer state
//! (momentum / Adam moments and the step count), which a supervised
//! training runtime needs to resume **bit-identically** after a worker
//! failure: under momentum or Adam, restarting with zeroed moments changes
//! every subsequent update. Optimizer moments are flat per-parameter
//! vectors, so they re-partition exactly like the parameters themselves.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::optim::{Optimizer, OptimizerKind};
use crate::stage::{ModelConfig, Stage};

/// Format magic ("CHIM").
const MAGIC: u32 = 0x4348_494D;
/// Version 1: parameters only.
const VERSION_PARAMS: u32 = 1;
/// Version 2: parameters + optimizer state.
const VERSION_STATE: u32 = 2;

/// Optimizer tags in the version-2 state section.
const OPT_TAG_SGD: u8 = 0;
const OPT_TAG_ADAM: u8 = 1;

/// Checkpoint decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Not a chimera checkpoint (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The byte stream ended early or has trailing garbage.
    Truncated,
    /// The stored parameter count does not match the configuration.
    ShapeMismatch {
        /// Parameters expected from the stored config.
        expected: usize,
        /// Parameters present in the stream.
        got: usize,
    },
    /// The requested partition depth does not divide the layer count.
    BadDepth(u32),
    /// The optimizer-state section names an optimizer this build does not
    /// know.
    UnknownOptimizer(u8),
    /// [`load_state`] was asked to restore optimizer state from a
    /// parameters-only (version 1) checkpoint.
    MissingState,
    /// Reading or writing the checkpoint's backing storage failed.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a chimera checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated or has trailing bytes"),
            CheckpointError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "parameter count mismatch: expected {expected}, got {got}"
                )
            }
            CheckpointError::BadDepth(d) => {
                write!(f, "layers do not divide evenly into {d} stages")
            }
            CheckpointError::UnknownOptimizer(t) => {
                write!(f, "unknown optimizer tag {t} in checkpoint state section")
            }
            CheckpointError::MissingState => {
                write!(f, "checkpoint has no optimizer state (version 1)")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint storage: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_header(buf: &mut BytesMut, cfg: &ModelConfig, version: u32, total: usize) {
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(version);
    buf.put_u64_le(cfg.vocab as u64);
    buf.put_u64_le(cfg.hidden as u64);
    buf.put_u64_le(cfg.seq as u64);
    buf.put_u64_le(cfg.layers as u64);
    buf.put_u64_le(cfg.heads as u64);
    buf.put_u8(u8::from(cfg.causal));
    buf.put_u64_le(cfg.seed);
    buf.put_u64_le(total as u64);
}

/// Serialize a full model (its stages must form a complete chain built for
/// the same [`ModelConfig`]). Parameters only (format version 1); use
/// [`save_state`] when the restore must also resume the optimizer.
pub fn save(stages: &[Stage]) -> Bytes {
    assert!(!stages.is_empty(), "cannot checkpoint an empty model");
    let cfg = *stages[0].config();
    let total: usize = stages.iter().map(Stage::num_params).sum();
    let mut buf = BytesMut::with_capacity(64 + total * 4);
    put_header(&mut buf, &cfg, VERSION_PARAMS, total);
    for stage in stages {
        for v in stage.params() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Serialize a full model together with its per-stage optimizer state
/// (format version 2). `optimizers[s]` must manage exactly stage `s`'s
/// parameters, and all stages must share one update rule and step count
/// (true whenever every stage steps once per training iteration).
pub fn save_state(stages: &[Stage], optimizers: &[Optimizer]) -> Bytes {
    assert!(!stages.is_empty(), "cannot checkpoint an empty model");
    assert_eq!(
        stages.len(),
        optimizers.len(),
        "one optimizer per stage required"
    );
    let cfg = *stages[0].config();
    let total: usize = stages.iter().map(Stage::num_params).sum();
    let kind = optimizers[0].kind();
    let (_, _, t) = optimizers[0].state();
    for (stage, opt) in stages.iter().zip(optimizers) {
        assert_eq!(
            opt.len(),
            stage.num_params(),
            "optimizer/stage size mismatch"
        );
        assert_eq!(opt.kind(), kind, "stages must share one optimizer kind");
        assert_eq!(opt.steps(), t, "stages must share one step count");
    }
    let per_param = match kind {
        OptimizerKind::Sgd { .. } => 2,  // params + m
        OptimizerKind::Adam { .. } => 3, // params + m + v
    };
    let mut buf = BytesMut::with_capacity(96 + total * 4 * per_param);
    put_header(&mut buf, &cfg, VERSION_STATE, total);
    for stage in stages {
        for v in stage.params() {
            buf.put_f32_le(v);
        }
    }
    match kind {
        OptimizerKind::Sgd { momentum } => {
            buf.put_u8(OPT_TAG_SGD);
            buf.put_f32_le(momentum);
        }
        OptimizerKind::Adam { beta1, beta2, eps } => {
            buf.put_u8(OPT_TAG_ADAM);
            buf.put_f32_le(beta1);
            buf.put_f32_le(beta2);
            buf.put_f32_le(eps);
        }
    }
    buf.put_u64_le(t);
    for opt in optimizers {
        let (m, _, _) = opt.state();
        for &x in m {
            buf.put_f32_le(x);
        }
    }
    if matches!(kind, OptimizerKind::Adam { .. }) {
        for opt in optimizers {
            let (_, v, _) = opt.state();
            for &x in v {
                buf.put_f32_le(x);
            }
        }
    }
    buf.freeze()
}

fn parse(
    bytes: &[u8],
    depth: u32,
) -> Result<(Vec<Stage>, Option<Vec<Optimizer>>), CheckpointError> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION_PARAMS && version != VERSION_STATE {
        return Err(CheckpointError::BadVersion(version));
    }
    if buf.remaining() < 5 * 8 + 1 + 8 + 8 {
        return Err(CheckpointError::Truncated);
    }
    let cfg = ModelConfig {
        vocab: buf.get_u64_le() as usize,
        hidden: buf.get_u64_le() as usize,
        seq: buf.get_u64_le() as usize,
        layers: buf.get_u64_le() as usize,
        heads: buf.get_u64_le() as usize,
        causal: buf.get_u8() != 0,
        seed: buf.get_u64_le(),
    };
    if !cfg.layers.is_multiple_of(depth as usize) || depth == 0 {
        return Err(CheckpointError::BadDepth(depth));
    }
    let total = buf.get_u64_le() as usize;
    if buf.remaining() < total * 4 {
        return Err(CheckpointError::ShapeMismatch {
            expected: total,
            got: buf.remaining() / 4,
        });
    }
    let mut stages = Stage::build_all(cfg, depth);
    let expected: usize = stages.iter().map(Stage::num_params).sum();
    if expected != total {
        return Err(CheckpointError::ShapeMismatch {
            expected,
            got: total,
        });
    }
    for stage in &mut stages {
        let mut flat = vec![0.0f32; stage.num_params()];
        for v in &mut flat {
            *v = buf.get_f32_le();
        }
        stage.set_params(&flat);
    }
    let optimizers = if version == VERSION_STATE {
        if buf.remaining() < 1 {
            return Err(CheckpointError::Truncated);
        }
        let tag = buf.get_u8();
        let (kind, has_v) = match tag {
            OPT_TAG_SGD => {
                if buf.remaining() < 4 {
                    return Err(CheckpointError::Truncated);
                }
                (
                    OptimizerKind::Sgd {
                        momentum: buf.get_f32_le(),
                    },
                    false,
                )
            }
            OPT_TAG_ADAM => {
                if buf.remaining() < 12 {
                    return Err(CheckpointError::Truncated);
                }
                (
                    OptimizerKind::Adam {
                        beta1: buf.get_f32_le(),
                        beta2: buf.get_f32_le(),
                        eps: buf.get_f32_le(),
                    },
                    true,
                )
            }
            other => return Err(CheckpointError::UnknownOptimizer(other)),
        };
        if buf.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let t = buf.get_u64_le();
        let moments = total * if has_v { 2 } else { 1 };
        if buf.remaining() < moments * 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut m_flat = vec![0.0f32; total];
        for x in &mut m_flat {
            *x = buf.get_f32_le();
        }
        let mut v_flat = vec![0.0f32; if has_v { total } else { 0 }];
        for x in &mut v_flat {
            *x = buf.get_f32_le();
        }
        // Moments are flat per-parameter vectors in the same global order
        // as the parameters, so they re-partition by the same split.
        let mut optimizers = Vec::with_capacity(stages.len());
        let mut off = 0;
        for stage in &stages {
            let n = stage.num_params();
            let m = m_flat[off..off + n].to_vec();
            let v = if has_v {
                v_flat[off..off + n].to_vec()
            } else {
                Vec::new()
            };
            optimizers.push(Optimizer::from_state(kind, m, v, t));
            off += n;
        }
        Some(optimizers)
    } else {
        None
    };
    if buf.remaining() != 0 {
        return Err(CheckpointError::Truncated);
    }
    Ok((stages, optimizers))
}

/// Restore a model from `bytes`, re-partitioned into `depth` stages. Accepts
/// both format versions; any optimizer state in a version-2 checkpoint is
/// parsed (and validated) but discarded.
pub fn load(bytes: &[u8], depth: u32) -> Result<Vec<Stage>, CheckpointError> {
    parse(bytes, depth).map(|(stages, _)| stages)
}

/// Restore a model **and** its per-stage optimizer state from a version-2
/// checkpoint, re-partitioned into `depth` stages. Fails with
/// [`CheckpointError::MissingState`] on a parameters-only checkpoint.
pub fn load_state(
    bytes: &[u8],
    depth: u32,
) -> Result<(Vec<Stage>, Vec<Optimizer>), CheckpointError> {
    let (stages, optimizers) = parse(bytes, depth)?;
    let optimizers = optimizers.ok_or(CheckpointError::MissingState)?;
    Ok((stages, optimizers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticData;
    use crate::reference::ReferenceTrainer;

    fn trained_model() -> Vec<Stage> {
        let cfg = ModelConfig::tiny();
        let mut t = ReferenceTrainer::new(
            Stage::build_all(cfg, 2),
            SyntheticData::new(cfg, 1),
            2,
            0.05,
            0.9,
        );
        t.train_iteration(0, 4);
        t.stages
    }

    #[test]
    fn roundtrip_is_bitexact() {
        let stages = trained_model();
        let bytes = save(&stages);
        let restored = load(&bytes, 2).unwrap();
        let a: Vec<f32> = stages.iter().flat_map(Stage::params).collect();
        let b: Vec<f32> = restored.iter().flat_map(Stage::params).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn repartition_on_load() {
        let stages = trained_model(); // trained as D=2
        let bytes = save(&stages);
        for depth in [1u32, 2, 4] {
            let restored = load(&bytes, depth).unwrap();
            assert_eq!(restored.len(), depth as usize);
            let a: Vec<f32> = stages.iter().flat_map(Stage::params).collect();
            let b: Vec<f32> = restored.iter().flat_map(Stage::params).collect();
            assert_eq!(a, b, "depth {depth}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(load(b"nope", 2).unwrap_err(), CheckpointError::Truncated);
        let mut bytes = save(&trained_model()).to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(load(&bytes, 2).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let bytes = save(&trained_model());
        let cut = &bytes[..bytes.len() - 4];
        assert!(matches!(
            load(cut, 2),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn bad_depth_rejected() {
        let bytes = save(&trained_model());
        assert_eq!(load(&bytes, 3).unwrap_err(), CheckpointError::BadDepth(3));
        assert_eq!(load(&bytes, 0).unwrap_err(), CheckpointError::BadDepth(0));
    }

    #[test]
    fn version_checked() {
        let mut bytes = save(&trained_model()).to_vec();
        bytes[4] = 99;
        assert_eq!(
            load(&bytes, 2).unwrap_err(),
            CheckpointError::BadVersion(99)
        );
    }

    #[test]
    fn stored_config_shape_mismatch_detected() {
        // Corrupt the stored hidden size: the config then disagrees with the
        // stored parameter count.
        let mut bytes = save(&trained_model()).to_vec();
        bytes[16] = bytes[16].wrapping_add(8); // hidden u64 at offset 16
        assert!(matches!(
            load(&bytes, 2),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    /// Train with a real optimizer, checkpoint params+state, restore under a
    /// different partition depth, and check every float is bit-identical.
    fn state_roundtrip(kind: OptimizerKind, save_depth: u32, load_depth: u32) {
        let cfg = ModelConfig {
            layers: 8,
            ..ModelConfig::tiny()
        };
        let mut stages = Stage::build_all(cfg, save_depth);
        let mut optimizers: Vec<Optimizer> = stages
            .iter()
            .map(|s| Optimizer::new(kind, s.num_params()))
            .collect();
        // A few non-trivial steps so m/v/t are all non-zero.
        for step in 0..3u64 {
            for (stage, opt) in stages.iter_mut().zip(&mut optimizers) {
                let n = stage.num_params();
                let grad: Vec<f32> = (0..n)
                    .map(|i| ((i as f32) + step as f32).sin() * 0.01)
                    .collect();
                let mut params = stage.params();
                opt.step(&mut params, &grad, 0.05);
                stage.set_params(&params);
            }
        }
        let bytes = save_state(&stages, &optimizers);
        let (restored, ropts) = load_state(&bytes, load_depth).unwrap();
        assert_eq!(restored.len(), load_depth as usize);
        assert_eq!(ropts.len(), load_depth as usize);

        let p0: Vec<u32> = stages
            .iter()
            .flat_map(Stage::params)
            .map(f32::to_bits)
            .collect();
        let p1: Vec<u32> = restored
            .iter()
            .flat_map(Stage::params)
            .map(f32::to_bits)
            .collect();
        assert_eq!(p0, p1, "params differ after re-partition");

        let flat = |opts: &[Optimizer], pick: fn(&Optimizer) -> Vec<f32>| -> Vec<u32> {
            opts.iter().flat_map(pick).map(f32::to_bits).collect()
        };
        let m = |o: &Optimizer| o.state().0.to_vec();
        let v = |o: &Optimizer| o.state().1.to_vec();
        assert_eq!(flat(&optimizers, m), flat(&ropts, m), "m differs");
        assert_eq!(flat(&optimizers, v), flat(&ropts, v), "v differs");
        for o in &ropts {
            assert_eq!(o.steps(), 3);
            assert_eq!(o.kind(), kind);
        }
    }

    #[test]
    fn state_roundtrip_repartitions_d4_to_d8() {
        state_roundtrip(OptimizerKind::Sgd { momentum: 0.9 }, 4, 8);
        state_roundtrip(OptimizerKind::adam(), 4, 8);
    }

    #[test]
    fn state_roundtrip_same_depth() {
        state_roundtrip(OptimizerKind::adam(), 2, 2);
    }

    #[test]
    fn load_accepts_state_checkpoints() {
        let stages = trained_model();
        let optimizers: Vec<Optimizer> = stages
            .iter()
            .map(|s| Optimizer::new(OptimizerKind::Sgd { momentum: 0.9 }, s.num_params()))
            .collect();
        let bytes = save_state(&stages, &optimizers);
        let restored = load(&bytes, 2).unwrap();
        let a: Vec<f32> = stages.iter().flat_map(Stage::params).collect();
        let b: Vec<f32> = restored.iter().flat_map(Stage::params).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn load_state_rejects_v1() {
        let bytes = save(&trained_model());
        assert_eq!(
            load_state(&bytes, 2).unwrap_err(),
            CheckpointError::MissingState
        );
    }

    #[test]
    fn truncated_state_section_detected() {
        let stages = trained_model();
        let optimizers: Vec<Optimizer> = stages
            .iter()
            .map(|s| Optimizer::new(OptimizerKind::adam(), s.num_params()))
            .collect();
        let bytes = save_state(&stages, &optimizers);
        let cut = &bytes[..bytes.len() - 4];
        assert_eq!(load_state(cut, 2).unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn unknown_optimizer_tag_rejected() {
        let stages = trained_model();
        let optimizers: Vec<Optimizer> = stages
            .iter()
            .map(|s| Optimizer::new(OptimizerKind::Sgd { momentum: 0.0 }, s.num_params()))
            .collect();
        let bytes = save_state(&stages, &optimizers).to_vec();
        let total: usize = stages.iter().map(Stage::num_params).sum();
        let tag_off = 8 + 5 * 8 + 1 + 8 + 8 + total * 4;
        let mut bytes = bytes;
        bytes[tag_off] = 7;
        assert_eq!(
            load_state(&bytes, 2).unwrap_err(),
            CheckpointError::UnknownOptimizer(7)
        );
    }
}
