//! Fault injection against the real threaded runtime: killed workers are
//! survived by checkpoint-restart (bit-identical to the fault-free run),
//! lost messages surface as descriptive timeouts instead of hangs, and
//! degraded-mode training continues on `W-1` groups.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chimera_core::chimera::{chimera, ChimeraConfig};
use chimera_nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera_runtime::{
    train, train_hybrid, FaultSpec, MsgFault, RecoveryPolicy, TrainError, TrainOptions,
};
use chimera_trace::{BufferSink, Event, SpanKind};

fn opts(iterations: u32) -> TrainOptions {
    TrainOptions {
        micro_batch: 1,
        iterations,
        lr: 0.07,
        momentum: 0.9,
        data_seed: 11,
        // Tiny-model ops take microseconds; a short deadline keeps the
        // blocked peers of a killed worker from stalling the test.
        recv_timeout: Duration::from_millis(300),
        ..TrainOptions::default()
    }
}

/// A seeded kill mid-run recovers via checkpoint-restart to bit-identical
/// final parameters (W = 1).
#[test]
fn kill_recovers_bit_identical_w1() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let mut o = opts(4);
    o.checkpoint_every = Some(2);
    let healthy = train(&sched, cfg, o.clone()).expect("fault-free run");

    for iteration in [1, 2, 3] {
        let mut f = o.clone();
        f.fault = Some(FaultSpec::kill_at(0, 1, iteration));
        let recovered = train(&sched, cfg, f).expect("recovers from kill");
        assert_eq!(recovered.recoveries, 1, "kill at i{iteration}");
        assert_eq!(recovered.degraded_to, None);
        assert_eq!(
            recovered.flat_params(),
            healthy.flat_params(),
            "kill at i{iteration}: recovery must be bit-identical"
        );
        assert_eq!(recovered.iteration_losses, healthy.iteration_losses);
    }
}

/// Same under hybrid data parallelism: a kill in either group of a W = 2
/// run recovers bit-identically.
#[test]
fn kill_recovers_bit_identical_w2() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let mut o = opts(3);
    o.checkpoint_every = Some(1);
    let healthy = train_hybrid(&sched, cfg, o.clone(), 2).expect("fault-free run");

    let mut f = o.clone();
    f.fault = Some(FaultSpec::kill_at(1, 0, 1));
    let recovered = train_hybrid(&sched, cfg, f, 2).expect("recovers from kill");
    assert_eq!(recovered.recoveries, 1);
    assert_eq!(recovered.flat_params(), healthy.flat_params());
    assert_eq!(recovered.iteration_losses, healthy.iteration_losses);
}

/// The CI soak matrix: kill every (group, worker) id once mid-run; each
/// case must recover to the fault-free parameters.
#[test]
fn soak_kill_matrix_every_worker_recovers() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let w = 2;
    let mut o = opts(3);
    o.checkpoint_every = Some(1);
    let healthy = train_hybrid(&sched, cfg, o.clone(), w).expect("fault-free run");

    for group in 0..w {
        for worker in 0..sched.d {
            let mut f = o.clone();
            f.fault = Some(FaultSpec::kill_at(group, worker, 1));
            let recovered = train_hybrid(&sched, cfg, f, w)
                .unwrap_or_else(|e| panic!("kill g{group}-w{worker}: {e}"));
            assert_eq!(recovered.recoveries, 1, "kill g{group}-w{worker}");
            assert_eq!(
                recovered.flat_params(),
                healthy.flat_params(),
                "kill g{group}-w{worker}: not bit-identical after recovery"
            );
        }
    }
}

/// A dropped p2p message is a lost message, not a hang: the blocked
/// receiver hits its deadline and training fails with a descriptive
/// [`TrainError::Timeout`] naming the blocked op.
#[test]
fn dropped_message_times_out_with_diagnostic() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let mut o = opts(2);
    // Drop the micro-0 activation worker 0 sends to worker 1.
    o.fault = Some(FaultSpec {
        drop_msg: Some(MsgFault {
            group: 0,
            from_worker: 0,
            grad: false,
            micro: 0,
        }),
        ..FaultSpec::default()
    });
    let started = Instant::now();
    let err = train(&sched, cfg, o).expect_err("lost message must fail");
    // Well before any hang: one recv deadline plus scheduling slack.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timed out too slowly: {:?}",
        started.elapsed()
    );
    // The dropped activation stalls the whole micro-0 chain: worker 1 never
    // receives the activation, so worker 0 never receives the matching
    // gradient either. Whichever blocked wait the supervisor reports, it
    // must name micro 0's p2p receive.
    match &err {
        TrainError::Timeout {
            group,
            iteration,
            op,
            waited,
            ..
        } => {
            assert_eq!((*group, *iteration), (0, 0));
            assert!(
                op == "recv act m0@s0/r0" || op == "recv grad m0@s1/r0",
                "unexpected blocked op: {op}"
            );
            assert_eq!(*waited, Duration::from_millis(300));
        }
        other => panic!("expected Timeout, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("m0@s"), "undescriptive: {msg}");
    assert!(msg.contains("blocked for"), "no timeout wording: {msg}");
}

/// A delayed message only slows the run down — the result is still
/// bit-identical to the fault-free one with no recoveries.
#[test]
fn delayed_message_only_slows_training() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let o = opts(2);
    let healthy = train(&sched, cfg, o.clone()).expect("fault-free run");
    let mut f = o;
    f.fault = Some(FaultSpec {
        delay_msg: Some((
            MsgFault {
                group: 0,
                from_worker: 0,
                grad: false,
                micro: 0,
            },
            Duration::from_millis(50),
        )),
        ..FaultSpec::default()
    });
    let delayed = train(&sched, cfg, f).expect("delay is survivable");
    assert_eq!(delayed.recoveries, 0);
    assert_eq!(delayed.flat_params(), healthy.flat_params());
}

/// Degraded mode: after a kill with `RecoveryPolicy::Degrade`, a W = 2 run
/// restores the checkpoint and continues on one group. The result equals
/// sequential SGD over the actually-consumed micro-batch stream (N·W per
/// iteration before the fault, N after).
#[test]
fn degrade_continues_on_w_minus_1() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let mut o = opts(4);
    o.checkpoint_every = Some(2);
    o.on_worker_loss = RecoveryPolicy::Degrade;
    o.fault = Some(FaultSpec::kill_at(1, 0, 2));
    let res = train_hybrid(&sched, cfg, o.clone(), 2).expect("degrades and finishes");
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.degraded_to, Some(1));

    // Reference: iterations 0-1 consume N·W = 4 micros each (committed
    // before the fault), iterations 2-3 consume N = 2 each on the surviving
    // group, continuing from micro 8.
    let mut r = ReferenceTrainer::new(
        Stage::build_all(cfg, sched.d),
        SyntheticData::new(cfg, o.data_seed),
        o.micro_batch,
        o.lr,
        o.momentum,
    );
    let mut ref_losses = Vec::new();
    for (offset, count) in [(0u64, 4u32), (4, 4), (8, 2), (10, 2)] {
        ref_losses.push(r.train_iteration(offset, count));
    }
    assert_eq!(res.flat_params(), r.flat_params());
    for (a, b) in res.iteration_losses.iter().zip(&ref_losses) {
        assert!((a - b).abs() < 1e-6, "loss {a} vs {b}");
    }
}

/// With a single group the degrade policy has nothing to drop and falls
/// back to checkpoint-restart.
#[test]
fn degrade_with_single_group_falls_back_to_restart() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let mut o = opts(3);
    o.checkpoint_every = Some(1);
    o.on_worker_loss = RecoveryPolicy::Degrade;
    let healthy = train(&sched, cfg, opts_with_ckpt(&o)).expect("fault-free");
    let mut f = o;
    f.fault = Some(FaultSpec::kill_at(0, 0, 1));
    let res = train(&sched, cfg, f).expect("restarts instead of degrading");
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.degraded_to, None);
    assert_eq!(res.flat_params(), healthy.flat_params());
}

fn opts_with_ckpt(o: &TrainOptions) -> TrainOptions {
    TrainOptions {
        fault: None,
        ..o.clone()
    }
}

/// An exhausted recovery budget surfaces as [`TrainError::WorkerLost`].
#[test]
fn exhausted_recovery_budget_reports_worker_lost() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let mut o = opts(2);
    o.max_recoveries = 0;
    o.fault = Some(FaultSpec::kill_at(0, 1, 0));
    match train(&sched, cfg, o).expect_err("budget of zero cannot recover") {
        TrainError::WorkerLost {
            group,
            worker,
            iteration,
            recoveries,
        } => {
            assert_eq!((group, worker, iteration), (0, 1, 0));
            assert_eq!(recoveries, 0);
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
}

/// Recovery is observable: the fault, its detection, the checkpoint
/// restore, and the replay all appear as spans (plus counters) in the
/// trace, and survive the Chrome export.
#[test]
fn recovery_emits_trace_spans_and_counters() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let sink = Arc::new(BufferSink::new());
    let mut o = opts(2);
    o.checkpoint_every = Some(1);
    o.trace = Some(sink.clone() as Arc<dyn chimera_trace::TraceSink>);
    o.fault = Some(FaultSpec::kill_at(0, 1, 1));
    let res = train(&sched, cfg, o).expect("recovers");
    assert_eq!(res.recoveries, 1);

    let events = sink.drain();
    let span_names = |kind: SpanKind| -> Vec<String> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) if s.kind == kind => Some(s.name.clone()),
                _ => None,
            })
            .collect()
    };
    let faults = span_names(SpanKind::Fault);
    assert_eq!(faults, vec!["kill g0-w1 i1"], "worker-side fault span");
    let detects = span_names(SpanKind::Detect);
    assert_eq!(detects, vec!["detect death g0-w1 i1"]);
    assert_eq!(span_names(SpanKind::Restore).len(), 1);
    let replays = span_names(SpanKind::Replay);
    assert_eq!(replays, vec!["replay i1..i2"]);
    // Supervisor counters record the recovery.
    let counters: Vec<(&str, f64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Counter(c) => Some((c.name.as_str(), c.value)),
            _ => None,
        })
        .collect();
    assert!(counters.contains(&("runtime.recovery.restores", 1.0)));
    assert!(counters.contains(&("runtime.recovery.total", 1.0)));
    // The supervisor track sits below the worker lanes.
    let sup_track = sched.num_workers() as u32;
    assert!(events.iter().any(
        |e| matches!(e, Event::Span(s) if s.kind == SpanKind::Detect && s.track == sup_track)
    ));
    // Chrome export carries the recovery categories through.
    let doc = chimera_trace::chrome_trace_json(&events, &[(0, "faulty run")]);
    let cats: Vec<&str> = doc["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e["cat"].as_str())
        .collect();
    for cat in ["fault", "detect", "restore", "replay"] {
        assert!(cats.contains(&cat), "no {cat} events in Chrome export");
    }
}

/// Checkpoint cadence does not change the result: a fault-free run with
/// per-iteration checkpoints matches one with a single final segment.
#[test]
fn checkpoint_cadence_is_bit_transparent() {
    let cfg = ModelConfig::tiny();
    let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
    let base = train(&sched, cfg, opts(4)).expect("single segment");
    for every in [1, 2, 3] {
        let mut o = opts(4);
        o.checkpoint_every = Some(every);
        let seg = train(&sched, cfg, o).expect("segmented");
        assert_eq!(seg.flat_params(), base.flat_params(), "cadence {every}");
        assert_eq!(seg.iteration_losses, base.iteration_losses);
    }
}
