//! Figure 14: weak scaling for Bert-48 on Piz Daint — P from 16 to 64, B̂
//! from 256 to 1,024 (PipeDream's mini-batch is its W·B). Paper headline at
//! P=64: Chimera beats PipeDream 1.94x, PipeDream-2BW 1.17x, GPipe 1.32x,
//! GEMS 2.41x, DAPPLE 1.19x.

use chimera_bench::scaling::{best_per_scheme, chimera_speedups};
use chimera_bench::{candidate_headers, candidate_json, candidate_row, print_table, save_json};
use chimera_core::chimera::ScaleMethod;
use chimera_perf::{ClusterSpec, ModelSpec};

fn main() {
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    let mut json = Vec::new();
    for (p, b_hat) in [(16u32, 256u64), (32, 512), (64, 1024)] {
        let results = best_per_scheme(model, cluster, p, b_hat, ScaleMethod::Direct);
        let rows: Vec<Vec<String>> = results
            .iter()
            .filter_map(|(_, c)| c.as_ref().map(candidate_row))
            .collect();
        print_table(
            &format!("Fig. 14: Bert-48 weak scaling, P={p}, B̂={b_hat}"),
            &candidate_headers(),
            &rows,
        );
        for (name, speedup) in chimera_speedups(&results) {
            println!("  Chimera vs {name}: {speedup:.2}x");
        }
        for (name, c) in &results {
            if let Some(c) = c {
                let mut j = candidate_json(c);
                j["p"] = serde_json::json!(p);
                j["label"] = serde_json::json!(name);
                json.push(j);
            }
        }
    }
    save_json("fig14_weak_bert", serde_json::json!(json));
}
