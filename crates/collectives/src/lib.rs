#![warn(missing_docs)]

//! # chimera-collectives
//!
//! Real shared-memory collective operations across threads, used by the
//! pipeline training runtime for gradient synchronization (the role GLOO's
//! allreduce plays in the paper's implementation):
//!
//! * [`exact`] — gather → rank-ordered sum → broadcast: bitwise
//!   deterministic regardless of thread timing, enabling the bit-exact
//!   pipelined-vs-sequential equivalence tests;
//! * [`ring`] — bandwidth-optimal ring reduce-scatter + allgather over
//!   crossbeam channels, benchmarked against the exact variant;
//! * [`dist`] — the same reductions over a [`chimera_comm::Transport`], so
//!   a group can span OS processes (TCP backend) without the caller
//!   changing anything;
//! * [`compress`] — QSGD quantization and top-k sparsification with error
//!   feedback (the paper's stated future work, §5).

pub mod compress;
pub mod dist;
pub mod exact;
pub mod keyed;
pub mod ring;

pub use compress::{dequantize, quantize, top_k, Quantized, Sparse};
pub use dist::{exact_allreduce, ring_allreduce, TransportKeyed};
pub use exact::{exact_group, ExactMember};
pub use keyed::{keyed_group, sum_in_key_order, KeyedMember};
pub use ring::{ring_group, RingMember};
