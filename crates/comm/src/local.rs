//! In-process backend: crossbeam channels, one per endpoint.
//!
//! This preserves the runtime's original interconnect exactly: payloads
//! *move* through an unbounded channel (a tensor is never copied or
//! serialized), sends never block, and a dead peer is detected through the
//! channel disconnecting. On top of that the endpoint adds the keyed inbox
//! — messages drained off the channel are parked under their [`MsgKey`]
//! until the owning worker asks for that exact key — which is what makes
//! receive order independent of delivery order.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::fault::FaultInjection;
use crate::transport::{poll_deadline, CommError, MsgKey, Payload, Rank, Transport};

/// Builds the full set of in-process endpoints for one fabric.
pub struct LocalFabric;

impl LocalFabric {
    /// Create `world` fully connected endpoints. Endpoint `k` of the
    /// returned vector has rank `k`; move each into its worker thread
    /// (behind an `Arc<dyn Transport>`). Dropping an endpoint disconnects
    /// its channel, so peers sending to a dead rank get
    /// [`CommError::PeerGone`] rather than buffering forever.
    #[allow(clippy::new_ret_no_self)] // factory for the whole fabric, not one endpoint
    pub fn new(world: u32) -> Vec<LocalEndpoint> {
        let (txs, rxs): (Vec<Sender<Parcel>>, Vec<Receiver<Parcel>>) =
            (0..world).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| LocalEndpoint {
                rank: rank as Rank,
                world,
                rx: Mutex::new(rx),
                tx: txs.clone(),
                inbox: Mutex::new(HashMap::new()),
                fault: None,
                sent: AtomicU64::new(0),
                received: AtomicU64::new(0),
            })
            .collect()
    }
}

type Parcel = (MsgKey, Payload);

/// One rank of a [`LocalFabric`].
pub struct LocalEndpoint {
    rank: Rank,
    world: u32,
    /// The stub crossbeam `Receiver` wraps `mpsc` and is `!Sync`; draining
    /// happens under this lock (uncontended: only the owning worker
    /// receives).
    rx: Mutex<Receiver<Parcel>>,
    tx: Vec<Sender<Parcel>>,
    inbox: Mutex<HashMap<MsgKey, VecDeque<Payload>>>,
    fault: Option<FaultInjection>,
    sent: AtomicU64,
    received: AtomicU64,
}

impl LocalEndpoint {
    /// Arm send-path fault injection on this endpoint (before it is shared
    /// with its worker thread).
    pub fn install_fault(&mut self, fault: FaultInjection) {
        self.fault = Some(fault);
    }

    /// Pull everything already delivered off the channel into the keyed
    /// inbox; returns `true` when at least one message was drained.
    fn drain(&self) -> bool {
        let rx = self.rx.lock();
        let mut progressed = false;
        while let Ok((key, payload)) = rx.try_recv() {
            progressed = true;
            self.received
                .fetch_add(payload.wire_bytes(), Ordering::Relaxed);
            self.inbox.lock().entry(key).or_default().push_back(payload);
        }
        progressed
    }

    fn take(&self, key: &MsgKey) -> Option<Payload> {
        let mut inbox = self.inbox.lock();
        let q = inbox.get_mut(key)?;
        let payload = q.pop_front();
        if q.is_empty() {
            inbox.remove(key);
        }
        payload
    }

    /// Non-blocking receive: one keyed-inbox lookup (draining anything
    /// already delivered) without the deadline poll loop. A `None` result
    /// consumes nothing, which is what lets the [`crate::modelcheck`]
    /// explorer drive an endpoint one step at a time.
    pub fn try_recv(&self, key: &MsgKey) -> Option<Payload> {
        if let Some(p) = self.take(key) {
            return Some(p);
        }
        self.drain();
        self.take(key)
    }
}

impl Transport for LocalEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn world(&self) -> u32 {
        self.world
    }

    fn send(&self, to: Rank, key: MsgKey, payload: Payload) -> Result<(), CommError> {
        if let Some(fault) = &self.fault {
            if fault.on_send(&key) {
                return Ok(());
            }
        }
        self.sent.fetch_add(payload.wire_bytes(), Ordering::Relaxed);
        self.tx
            .get(to as usize)
            .ok_or(CommError::PeerGone { to })?
            .send((key, payload))
            .map_err(|_| CommError::PeerGone { to })
    }

    fn recv_deadline(&self, key: MsgKey, timeout: Duration) -> Result<Payload, CommError> {
        if let Some(p) = self.take(&key) {
            return Ok(p);
        }
        self.drain();
        if let Some(p) = self.take(&key) {
            return Ok(p);
        }
        poll_deadline(timeout, || {
            self.drain();
            self.take(&key)
        })
        .ok_or(CommError::Timeout {
            key: key.describe(),
            waited: timeout,
        })
    }

    fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    fn bytes_received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SendFault;
    use std::sync::Arc;

    fn key(micro: u64) -> MsgKey {
        MsgKey::Act {
            replica: 0,
            stage: 0,
            micro,
        }
    }

    #[test]
    fn keyed_receive_tolerates_reordering() {
        let eps = LocalFabric::new(2);
        let (a, b) = (&eps[0], &eps[1]);
        a.send(1, key(1), Payload::Flat(vec![1.0])).unwrap();
        a.send(1, key(0), Payload::Flat(vec![0.0])).unwrap();
        // b asks for micro 0 first even though micro 1 arrived first.
        let p0 = b.recv_deadline(key(0), Duration::from_secs(1)).unwrap();
        let p1 = b.recv_deadline(key(1), Duration::from_secs(1)).unwrap();
        assert_eq!(p0.into_flat(), vec![0.0]);
        assert_eq!(p1.into_flat(), vec![1.0]);
        assert!(a.bytes_sent() > 0);
        assert_eq!(b.bytes_received(), a.bytes_sent());
    }

    #[test]
    fn missing_message_times_out_with_key_description() {
        let eps = LocalFabric::new(2);
        let err = eps[1]
            .recv_deadline(key(7), Duration::from_millis(30))
            .unwrap_err();
        match err {
            CommError::Timeout { key, waited } => {
                assert_eq!(key, "act m7@s0/r0");
                assert_eq!(waited, Duration::from_millis(30));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn dead_peer_surfaces_as_peer_gone() {
        let mut eps = LocalFabric::new(2);
        drop(eps.remove(1));
        let err = eps[0].send(1, key(0), Payload::Flat(vec![])).unwrap_err();
        assert_eq!(err, CommError::PeerGone { to: 1 });
    }

    #[test]
    fn installed_drop_fault_loses_exactly_one_message() {
        let mut eps = LocalFabric::new(2);
        eps[0].install_fault(FaultInjection::drop_msg(SendFault {
            grad: false,
            micro: 0,
        }));
        let b = Arc::new(eps.remove(1));
        let a = Arc::new(eps.remove(0));
        a.send(1, key(0), Payload::Flat(vec![1.0])).unwrap();
        assert!(b.recv_deadline(key(0), Duration::from_millis(30)).is_err());
        // One-shot: the retransmission goes through.
        a.send(1, key(0), Payload::Flat(vec![1.0])).unwrap();
        assert!(b.recv_deadline(key(0), Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn concurrent_producers_one_consumer() {
        let mut eps = LocalFabric::new(3);
        let sink = Arc::new(eps.remove(0));
        let producers: Vec<_> = eps.into_iter().map(Arc::new).collect();
        let handles: Vec<_> = producers
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    for m in 0..16u64 {
                        let k = MsgKey::Coll {
                            tag: 0,
                            round: m,
                            from: ep.rank(),
                        };
                        ep.send(0, k, Payload::Flat(vec![ep.rank() as f32]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for m in 0..16u64 {
            for from in 1..3u32 {
                let k = MsgKey::Coll {
                    tag: 0,
                    round: m,
                    from,
                };
                let v = sink.recv_deadline(k, Duration::from_secs(2)).unwrap();
                assert_eq!(v.into_flat(), vec![from as f32]);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
