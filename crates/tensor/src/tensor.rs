//! A minimal row-major `f32` matrix type.
//!
//! The transformer layers in `chimera-nn` only need 2-D tensors (token/batch
//! dimensions are flattened into rows), so `Tensor` is deliberately a dense
//! `rows × cols` matrix with the handful of BLAS-like kernels the forward
//! and backward passes require.

use crate::rng::Rng;

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major vector (must have `rows * cols` elements).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.uniform_in(-bound, bound))
            .collect();
        Tensor { rows, cols, data }
    }

    /// Normal(0, std) initialization.
    pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` — blocked matrix multiply, `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        // i-k-j loop order: streams through `other` rows, autovectorizes the
        // inner j loop.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` — `[k,m]ᵀ x [k,n] -> [m,n]` without materializing the
    /// transpose (the `dW = Xᵀ dY` pattern of linear-layer backward).
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` — `[m,k] x [n,k]ᵀ -> [m,n]` (the `dX = dY Wᵀ`
    /// pattern).
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place add.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise add producing a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place `self += scale * other` (AXPY).
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row-vector bias to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Column sums (`[1, cols]` as a plain vector) — the bias gradient.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Map every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Copy a contiguous block of rows.
    pub fn rows_slice(&self, start: usize, count: usize) -> Tensor {
        assert!(start + count <= self.rows);
        Tensor {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        }
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_values() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmul_variants_agree() {
        let mut rng = Rng::new(5);
        let a = Tensor::normal(4, 6, 1.0, &mut rng);
        let b = Tensor::normal(4, 3, 1.0, &mut rng);
        // aᵀ b via t_matmul == transpose().matmul().
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
        let c = Tensor::normal(5, 6, 1.0, &mut rng);
        // a cᵀ via matmul_t == matmul(transpose).
        let direct = a.matmul_t(&c);
        let explicit = a.matmul(&c.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn bias_and_sums() {
        let mut a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(a.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows(), vec![24.0, 46.0]);
    }

    #[test]
    fn axpy_scale_map_hadamard() {
        let mut a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
        let m = a.map(|v| v * 2.0);
        assert_eq!(m.data(), &[3.0, 4.0, 5.0]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), a.data());
    }

    #[test]
    fn rows_slice_copies_block() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.rows_slice(1, 2);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = Rng::new(11);
        let w = Tensor::xavier(16, 64, &mut rng);
        let bound = (6.0 / 80.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(w.data().iter().any(|&v| v != 0.0));
    }
}
