//! The transport abstraction: keyed, deadline-aware point-to-point
//! messaging between ranks.

use std::time::Duration;

use chimera_tensor::Tensor;

/// Global endpoint id within one fabric: `0..world`.
///
/// The training runtime lays ranks out group-major: rank
/// `group · D + local_worker` is worker `local_worker` of data-parallel
/// group `group`.
pub type Rank = u32;

/// Addresses one message. Receivers wait for a *specific* key, so delivery
/// order on the wire never matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKey {
    /// Forward boundary activation produced by `stage` of `replica` for
    /// micro-batch `micro`.
    Act {
        /// Producing pipeline replica.
        replica: u32,
        /// Producing stage.
        stage: u32,
        /// Global micro-batch id.
        micro: u64,
    },
    /// Backward boundary gradient produced by `stage` of `replica` for
    /// micro-batch `micro`.
    Grad {
        /// Producing pipeline replica.
        replica: u32,
        /// Producing stage.
        stage: u32,
        /// Global micro-batch id.
        micro: u64,
    },
    /// Collective traffic: contribution to (or result of) round `round` of
    /// the collective identified by `tag`, sent by rank `from`.
    Coll {
        /// Which collective group (the runtime uses the stage id).
        tag: u32,
        /// Round number within the group (per-member call order).
        round: u64,
        /// Sending rank.
        from: Rank,
    },
    /// Control-plane traffic (rendezvous, result gathering).
    Ctrl {
        /// Application-defined tag.
        tag: u32,
        /// Sending rank.
        from: Rank,
    },
}

impl MsgKey {
    /// Short human-readable form for error messages, e.g. `act m3@s1/r0`.
    pub fn describe(&self) -> String {
        match *self {
            MsgKey::Act {
                replica,
                stage,
                micro,
            } => format!("act m{micro}@s{stage}/r{replica}"),
            MsgKey::Grad {
                replica,
                stage,
                micro,
            } => format!("grad m{micro}@s{stage}/r{replica}"),
            MsgKey::Coll { tag, round, from } => {
                format!("coll t{tag} round {round} from w{from}")
            }
            MsgKey::Ctrl { tag, from } => format!("ctrl t{tag} from w{from}"),
        }
    }
}

/// What a message carries. The local backend moves these values without
/// copying; the TCP backend encodes them with the framing in [`crate::wire`].
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A boundary tensor (activation or gradient).
    Tensor(Tensor),
    /// A keyed-allreduce contribution: `(key, vector)` pairs.
    Keyed(Vec<(u64, Vec<f32>)>),
    /// A flat `f32` vector (reduced result, parameter shard).
    Flat(Vec<f32>),
    /// Per-micro losses: `(global_micro, loss)` pairs.
    Losses(Vec<(u64, f32)>),
    /// Raw bytes (control plane).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Approximate wire size in bytes (exact for the TCP framing's body,
    /// used by the local backend's byte counters).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Tensor(t) => 8 + t.len() as u64 * 4,
            Payload::Keyed(pairs) => {
                8 + pairs
                    .iter()
                    .map(|(_, v)| 12 + v.len() as u64 * 4)
                    .sum::<u64>()
            }
            Payload::Flat(v) => 8 + v.len() as u64 * 4,
            Payload::Losses(l) => 8 + l.len() as u64 * 12,
            Payload::Bytes(b) => 8 + b.len() as u64,
        }
    }

    /// Unwrap a [`Payload::Tensor`]; panics on any other variant (a wire
    /// protocol violation, not a recoverable condition).
    pub fn into_tensor(self) -> Tensor {
        match self {
            Payload::Tensor(t) => t,
            other => panic!("expected tensor payload, got {other:?}"),
        }
    }

    /// Unwrap a [`Payload::Flat`]; panics on any other variant.
    pub fn into_flat(self) -> Vec<f32> {
        match self {
            Payload::Flat(v) => v,
            other => panic!("expected flat payload, got {other:?}"),
        }
    }

    /// Unwrap a [`Payload::Keyed`]; panics on any other variant.
    pub fn into_keyed(self) -> Vec<(u64, Vec<f32>)> {
        match self {
            Payload::Keyed(v) => v,
            other => panic!("expected keyed payload, got {other:?}"),
        }
    }

    /// Unwrap a [`Payload::Losses`]; panics on any other variant.
    pub fn into_losses(self) -> Vec<(u64, f32)> {
        match self {
            Payload::Losses(v) => v,
            other => panic!("expected losses payload, got {other:?}"),
        }
    }
}

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A deadlined receive expired with no matching message.
    Timeout {
        /// The key that never arrived (described).
        key: String,
        /// How long the receiver waited.
        waited: Duration,
    },
    /// The peer is unreachable (channel closed, connection refused after
    /// the retry budget, write failed).
    PeerGone {
        /// The unreachable rank.
        to: Rank,
    },
    /// The rendezvous / rank-assignment phase failed.
    Rendezvous(String),
    /// A malformed frame arrived on the wire.
    Protocol(String),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { key, waited } => {
                write!(f, "receive of {key} timed out after {waited:?}")
            }
            CommError::PeerGone { to } => write!(f, "peer rank {to} is gone"),
            CommError::Rendezvous(msg) => write!(f, "rendezvous failed: {msg}"),
            CommError::Protocol(msg) => write!(f, "wire protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

/// One endpoint of an interconnect fabric.
///
/// Implementations must be usable from the single worker thread that owns
/// the endpoint plus any helper threads the backend itself spawns; all
/// methods take `&self`.
pub trait Transport: Send + Sync {
    /// This endpoint's rank.
    fn rank(&self) -> Rank;

    /// Number of endpoints in the fabric.
    fn world(&self) -> u32;

    /// Send `payload` to `to` under `key`. Never blocks on the receiver
    /// (backends buffer); fails only when the peer is unreachable.
    fn send(&self, to: Rank, key: MsgKey, payload: Payload) -> Result<(), CommError>;

    /// Wait until a message with `key` arrives, up to `timeout`. Messages
    /// with other keys received while waiting are buffered for their own
    /// future receives.
    fn recv_deadline(&self, key: MsgKey, timeout: Duration) -> Result<Payload, CommError>;

    /// Total payload bytes sent by this endpoint.
    fn bytes_sent(&self) -> u64;

    /// Total payload bytes received by this endpoint.
    fn bytes_received(&self) -> u64;
}

/// A keyed-ordered allreduce participant, the gradient-synchronization
/// contract the training runtime programs against. Implemented by the
/// shared-memory `chimera_collectives::KeyedMember` and by the
/// transport-backed distributed reduction.
pub trait KeyedReduce: Send {
    /// Non-blocking launch: contribute `(key, vector)` pairs to this
    /// member's next round.
    fn deposit(&self, contribution: Vec<(u64, Vec<f32>)>);

    /// Deadline-aware wait for this member's next un-fetched round; `None`
    /// on expiry.
    fn fetch_deadline(&self, timeout: Duration) -> Option<Vec<f32>>;
}

/// Poll with bounded exponential backoff until `f` produces a value or the
/// deadline passes. The stub-friendly waiting primitive every deadline in
/// this crate uses (no timed condition variables required).
pub(crate) fn poll_deadline<T>(timeout: Duration, mut f: impl FnMut() -> Option<T>) -> Option<T> {
    let deadline = std::time::Instant::now() + timeout;
    let mut backoff_us = 10u64;
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_micros(backoff_us));
        backoff_us = (backoff_us * 2).min(500);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_descriptions_are_compact() {
        let k = MsgKey::Act {
            replica: 0,
            stage: 1,
            micro: 3,
        };
        assert_eq!(k.describe(), "act m3@s1/r0");
        let g = MsgKey::Grad {
            replica: 1,
            stage: 2,
            micro: 9,
        };
        assert_eq!(g.describe(), "grad m9@s2/r1");
    }

    #[test]
    fn wire_bytes_counts_payload() {
        assert_eq!(Payload::Flat(vec![0.0; 4]).wire_bytes(), 8 + 16);
        let t = Tensor::zeros(2, 3);
        assert_eq!(Payload::Tensor(t).wire_bytes(), 8 + 24);
    }

    #[test]
    fn poll_deadline_times_out() {
        let start = std::time::Instant::now();
        let out: Option<()> = poll_deadline(Duration::from_millis(20), || None);
        assert!(out.is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
