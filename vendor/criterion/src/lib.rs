//! Offline stub of `criterion`: runs each benchmark closure a few times and
//! prints a rough per-iteration wall time. Enough to compile and smoke-run
//! `cargo bench` targets without the real statistics engine.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iteration driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub keys iteration count off it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 20);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:.0} ns/iter ({} iters)",
            self.name, id, b.ns_per_iter, b.iters
        );
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            ns_per_iter: 0.0,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.0} ns/iter ({} iters)",
            self.name, id.0, b.ns_per_iter, b.iters
        );
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: 3,
            _parent: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runner (stub: a plain function).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
