//! Cross-crate end-to-end: the paper's "convergence friendly" column of
//! Table 2, executed. Synchronous schedules of every scheme and shape train
//! bit-identically to sequential mini-batch SGD on a real transformer.

use std::sync::Arc;

use proptest::prelude::*;

use chimera::comm::{TcpFabric, Transport};
use chimera::core::baselines::{dapple, gems, gpipe};
use chimera::core::chimera::{chimera, ChimeraConfig, ScaleMethod};
use chimera::core::schedule::{Schedule, SyncStrategy};
use chimera::core::sync::place_sync;
use chimera::core::unit_time::UnitCosts;
use chimera::nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera::runtime::{train, train_worker_process, TrainOptions};

fn opts(iterations: u32) -> TrainOptions {
    TrainOptions {
        micro_batch: 1,
        iterations,
        lr: 0.08,
        momentum: 0.9,
        data_seed: 2024,
        ..TrainOptions::default()
    }
}

fn cfg_for(d: u32) -> ModelConfig {
    ModelConfig {
        layers: d as usize,
        hidden: 16,
        heads: 2,
        seq: 4,
        vocab: 29,
        causal: true,
        seed: 11,
    }
}

fn check(sched: &Schedule, iterations: u32) {
    let cfg = cfg_for(sched.d);
    let o = opts(iterations);
    let result = train(sched, cfg, o.clone()).expect("training succeeds");
    let mut reference = ReferenceTrainer::new(
        Stage::build_all(cfg, sched.d),
        SyntheticData::new(cfg, o.data_seed),
        o.micro_batch,
        o.lr,
        o.momentum,
    );
    for it in 0..iterations {
        reference.train_iteration(it as u64 * sched.n as u64, sched.n);
    }
    assert_eq!(
        result.flat_params(),
        reference.flat_params(),
        "{} D={} N={} diverged from sequential SGD",
        sched.scheme,
        sched.d,
        sched.n
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random (D, N) Chimera configurations — N below, at, and above D.
    #[test]
    fn chimera_random_shapes_bitexact(dh in 1u32..4, n in 1u32..13) {
        let d = 2 * dh;
        check(&chimera(&ChimeraConfig::new(d, n)).unwrap(), 2);
    }
}

#[test]
fn chimera_n_less_than_d_bitexact() {
    for n in [1u32, 2, 3] {
        check(&chimera(&ChimeraConfig::new(4, n)).unwrap(), 2);
    }
}

#[test]
fn chimera_d6_bitexact() {
    check(&chimera(&ChimeraConfig::new(6, 6)).unwrap(), 2);
}

#[test]
fn chimera_f2_d8_bitexact() {
    check(
        &chimera(&ChimeraConfig {
            d: 8,
            n: 8,
            f: 2,
            scale: ScaleMethod::Direct,
        })
        .unwrap(),
        2,
    );
}

#[test]
fn all_sync_strategies_bitexact() {
    for strat in [
        SyncStrategy::PostHoc,
        SyncStrategy::Eager,
        SyncStrategy::EagerOpt,
    ] {
        let sched = place_sync(
            chimera(&ChimeraConfig::new(4, 8)).unwrap(),
            strat,
            UnitCosts::practical(),
        );
        check(&sched, 2);
    }
}

#[test]
fn baselines_bitexact() {
    check(&gpipe(4, 8), 2);
    check(&dapple(4, 8), 2);
    check(&gems(4, 4), 2);
}

#[test]
fn recompute_bitexact_everywhere() {
    check(
        &chimera(&ChimeraConfig::new(4, 4)).unwrap().with_recompute(),
        2,
    );
    check(&dapple(4, 4).with_recompute(), 2);
}

/// D=4 Chimera over the TCP transport (real loopback sockets, the full wire
/// path: framing, rendezvous, reader threads) trains bit-identically to the
/// in-process channel fabric — and therefore to sequential SGD.
#[test]
fn chimera_d4_over_tcp_bitexact() {
    let sched = chimera(&ChimeraConfig::new(4, 4)).unwrap();
    let cfg = cfg_for(sched.d);
    let o = opts(2);

    let endpoints = TcpFabric::loopback(sched.num_workers() as u32).expect("loopback fabric");
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let sched = sched.clone();
            let o = o.clone();
            std::thread::spawn(move || {
                train_worker_process(Arc::new(ep) as Arc<dyn Transport>, &sched, cfg, o, 1)
                    .expect("tcp worker trains")
            })
        })
        .collect();
    let mut outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let tcp = outcomes.remove(0).expect("rank 0 assembles the outcome");

    let local = train(&sched, cfg, o).expect("in-process training succeeds");
    let tcp_bits: Vec<u32> = tcp.flat_params.iter().map(|f| f.to_bits()).collect();
    let local_bits: Vec<u32> = local.flat_params().iter().map(|f| f.to_bits()).collect();
    assert_eq!(tcp_bits, local_bits, "tcp fabric diverged from in-process");
    for (a, b) in tcp.iteration_losses.iter().zip(&local.iteration_losses) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Different synchronous schemes produce the same model as each other, so
/// the practitioner can choose purely on throughput (§2's point).
#[test]
fn schemes_interchangeable() {
    let d = 4;
    let n = 4;
    let cfg = cfg_for(d);
    let o = opts(3);
    let a = train(&chimera(&ChimeraConfig::new(d, n)).unwrap(), cfg, o.clone()).unwrap();
    let b = train(&gpipe(d, n), cfg, o.clone()).unwrap();
    let c = train(&gems(d, n), cfg, o).unwrap();
    assert_eq!(a.flat_params(), b.flat_params());
    assert_eq!(a.flat_params(), c.flat_params());
    assert_eq!(a.iteration_losses, b.iteration_losses);
}
