//! Offline stub of `parking_lot` backed by `std::sync` (poisoning ignored).

use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// parking_lot waits on `&mut guard` rather than consuming the guard;
    /// emulate by moving the std guard out and back in place.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.0, inner);
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (inner, res) = match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(&mut guard.0, inner);
            WaitTimeoutResult(res.timed_out())
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
