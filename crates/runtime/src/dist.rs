//! Multi-process training: the per-process worker entry point behind
//! `chimera-cli launch` / `chimera-cli worker`.
//!
//! Every OS process owns exactly one pipeline worker (one transport rank);
//! [`train_worker_process`] builds that worker against any
//! [`chimera_comm::Transport`] endpoint — the TCP backend for real
//! multi-process runs, the local backend in tests — wires its gradient
//! synchronization through [`chimera_collectives::TransportKeyed`], runs the
//! whole schedule, and gathers results at rank 0 over the control plane.
//!
//! Determinism is preserved end to end: stage initialization, data order,
//! and the keyed-ordered reduction are all identical to the in-process
//! [`crate::train_hybrid`] path, so a distributed run's final parameters are
//! **bit-identical** to the threaded run's (and therefore to sequential
//! SGD). Checkpoint-restart recovery is an in-process supervisor feature and
//! is not available here; injected faults surface as [`TrainError`]s.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use chimera_collectives::TransportKeyed;
use chimera_comm::{KeyedReduce, MsgKey, Payload, Rank, Transport};
use chimera_core::schedule::Schedule;
use chimera_core::{StageId, WorkerId};
use chimera_nn::{ModelConfig, Optimizer, Stage, SyntheticData};

use crate::error::{TrainError, WorkerError};
use crate::worker::{SegmentSpec, TrainOptions, Worker};

/// Control-plane tag carrying a worker's `(micro, loss)` pairs to rank 0.
const LOSS_TAG: u32 = u32::MAX;

/// Control-plane tag for the final parameters of one `(replica, stage)`
/// copy. Replica and stage ids are far below 2^16 in any runnable config.
fn stage_tag(replica: u32, stage: u32) -> u32 {
    (replica << 16) | stage
}

/// What rank 0 assembles after a distributed run. Ranks other than 0 ship
/// their slice to rank 0 and get `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistOutcome {
    /// Mean loss per iteration, over all `N·W` micro-batches.
    pub iteration_losses: Vec<f32>,
    /// Concatenated final parameters of stages `0..D`, every replica copy
    /// verified bit-identical — comparable with
    /// [`crate::TrainResult::flat_params`] and
    /// [`chimera_nn::ReferenceTrainer::flat_params`].
    pub flat_params: Vec<f32>,
}

fn escalate(e: WorkerError) -> TrainError {
    let (group, worker, iteration) = e.location();
    match e {
        WorkerError::Killed { .. } => TrainError::WorkerLost {
            group,
            worker,
            iteration,
            recoveries: 0,
        },
        WorkerError::RecvTimeout { op, waited, .. } => TrainError::Timeout {
            group,
            worker,
            iteration,
            op,
            waited,
        },
        WorkerError::AllReduceTimeout { stage, waited, .. } => TrainError::Timeout {
            group,
            worker,
            iteration,
            op: format!("allreduce wait for stage {stage}"),
            waited,
        },
        WorkerError::PeerGone { to, .. } => TrainError::Timeout {
            group,
            worker,
            iteration,
            op: format!("send to dead peer w{to}"),
            waited: Duration::ZERO,
        },
    }
}

/// A gather at rank 0 that never completed.
fn gather_timeout(iterations: u32, key: MsgKey, waited: Duration) -> TrainError {
    TrainError::Timeout {
        group: 0,
        worker: 0,
        iteration: iterations,
        op: format!("gather {}", key.describe()),
        waited,
    }
}

/// Run this process's single pipeline worker of a `W·D` fabric and take
/// part in the final result gather.
///
/// The fabric must have exactly `W · sched.num_workers()` ranks laid out
/// group-major (rank = `group · D + local worker id`); `ep.rank()` decides
/// which worker this process executes. Rank 0 returns the assembled
/// [`DistOutcome`]; every other rank returns `Ok(None)` after shipping its
/// losses and stage copies to rank 0.
pub fn train_worker_process(
    ep: Arc<dyn Transport>,
    sched: &Schedule,
    cfg: ModelConfig,
    opts: TrainOptions,
    w: u32,
) -> Result<Option<DistOutcome>, TrainError> {
    let d = sched.d;
    let per_group = sched.num_workers() as u32;
    assert_eq!(
        ep.world(),
        per_group * w,
        "fabric size must be W·D (group-major)"
    );
    let rank = ep.rank();
    let group = rank / per_group;
    let lw = rank % per_group;
    let wid = WorkerId(lw);

    let data = SyntheticData::new(cfg, opts.data_seed);
    let kind = opts.optimizer_kind();
    let canon_stages = Stage::build_all(cfg, d);

    // One keyed-ordered allreduce group per held stage, spanning every
    // data-parallel group's holders in (group, holder) member order — the
    // exact order the in-process runtime assigns, so the key-ordered sum is
    // bitwise identical.
    let mut sync: HashMap<u32, Box<dyn KeyedReduce>> = HashMap::new();
    for s in 0..d {
        let holders = sched.placement.stage_holders(StageId(s));
        if !holders.contains(&wid) {
            continue;
        }
        let mut members: Vec<Rank> = Vec::with_capacity(holders.len() * w as usize);
        for g in 0..w {
            for h in &holders {
                members.push(g * per_group + h.0);
            }
        }
        sync.insert(
            s,
            Box::new(TransportKeyed::new(ep.clone(), s, members)) as _,
        );
    }

    let stages: Vec<(u32, u32, Stage, Optimizer)> = sched
        .placement
        .held_by(wid)
        .into_iter()
        .map(|(r, s)| {
            let stage = canon_stages[s.0 as usize].clone();
            let opt = Optimizer::new(kind, stage.num_params());
            (r.0, s.0, stage, opt)
        })
        .collect();

    let seg = SegmentSpec {
        start_iter: 0,
        iterations: opts.iterations,
        micro_base: 0,
    };
    let timeout = opts.recv_timeout;
    let iterations = opts.iterations;
    let worker = Worker::new(
        wid,
        d,
        group,
        w,
        sched.n,
        sched.workers[lw as usize].clone(),
        sched.placement.clone(),
        stages,
        sync,
        ep.clone(),
        data,
        opts,
        seg,
        sched.flushes,
    );
    let result = worker.run().map_err(escalate)?;

    if rank != 0 {
        // Ship this worker's slice to rank 0. A failed send means rank 0 is
        // gone; there is nobody left to report to, so exit quietly.
        let _ = ep.send(
            0,
            MsgKey::Ctrl {
                tag: LOSS_TAG,
                from: rank,
            },
            Payload::Losses(result.losses),
        );
        for (r, s, stage, _) in result.stages {
            let _ = ep.send(
                0,
                MsgKey::Ctrl {
                    tag: stage_tag(r, s),
                    from: rank,
                },
                Payload::Flat(stage.params()),
            );
        }
        return Ok(None);
    }

    // Rank 0: gather losses and every (replica, stage) parameter copy.
    let mut losses = result.losses;
    for from in 1..ep.world() {
        let key = MsgKey::Ctrl {
            tag: LOSS_TAG,
            from,
        };
        let payload = ep
            .recv_deadline(key, timeout)
            .map_err(|_| gather_timeout(iterations, key, timeout))?;
        losses.extend(payload.into_losses());
    }
    losses.sort_unstable_by_key(|&(g, _)| g);

    let mut replica_params: HashMap<u32, Vec<Vec<f32>>> = HashMap::new();
    for (_, s, stage, _) in &result.stages {
        replica_params.entry(*s).or_default().push(stage.params());
    }
    for from in 1..ep.world() {
        let peer = WorkerId(from % per_group);
        for (r, s) in sched.placement.held_by(peer) {
            let key = MsgKey::Ctrl {
                tag: stage_tag(r.0, s.0),
                from,
            };
            let payload = ep
                .recv_deadline(key, timeout)
                .map_err(|_| gather_timeout(iterations, key, timeout))?;
            replica_params
                .entry(s.0)
                .or_default()
                .push(payload.into_flat());
        }
    }

    // Verify all 2f·W replica copies of each stage agree bit-for-bit, then
    // deduplicate — same contract as the in-process supervisor.
    let mut flat_params = Vec::new();
    for s in 0..d {
        let copies = replica_params
            .remove(&s)
            .ok_or(TrainError::MissingStage { stage: s })?;
        let (canonical, rest) = copies.split_first().expect("at least one replica");
        if rest.iter().any(|c| c != canonical) {
            return Err(TrainError::ReplicaDivergence { stage: s });
        }
        flat_params.extend_from_slice(canonical);
    }

    let per = sched.n as usize * w as usize;
    let iteration_losses = (0..iterations as usize)
        .map(|i| {
            let slice = &losses[i * per..(i + 1) * per];
            (slice.iter().map(|&(_, l)| l as f64).sum::<f64>() / per as f64) as f32
        })
        .collect();
    Ok(Some(DistOutcome {
        iteration_losses,
        flat_params,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::train_hybrid;
    use chimera_comm::LocalFabric;
    use chimera_core::chimera::{chimera, ChimeraConfig};
    use std::thread;

    fn opts(iterations: u32) -> TrainOptions {
        TrainOptions {
            micro_batch: 2,
            iterations,
            lr: 0.05,
            momentum: 0.9,
            data_seed: 11,
            ..TrainOptions::default()
        }
    }

    /// Every rank in its own "process" (thread + its own endpoint of a
    /// local fabric, no shared state beyond the transport): the distributed
    /// path must be bit-identical to the in-process supervisor.
    #[test]
    fn distributed_run_matches_in_process_bitwise() {
        let sched = chimera(&ChimeraConfig::new(2, 2)).unwrap();
        let cfg = ModelConfig::tiny();
        let w = 2u32;
        let world = sched.num_workers() as u32 * w;

        let handles: Vec<_> = LocalFabric::new(world)
            .into_iter()
            .map(|e| {
                let sched = sched.clone();
                thread::spawn(move || {
                    train_worker_process(Arc::new(e), &sched, cfg, opts(3), w).unwrap()
                })
            })
            .collect();
        let mut outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let dist = outcomes.remove(0).expect("rank 0 assembles the outcome");
        assert!(outcomes.iter().all(Option::is_none));

        let reference = train_hybrid(&sched, cfg, opts(3), w).unwrap();
        let dist_bits: Vec<u32> = dist.flat_params.iter().map(|f| f.to_bits()).collect();
        let ref_bits: Vec<u32> = reference
            .flat_params()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(dist_bits, ref_bits);
        assert_eq!(dist.iteration_losses.len(), 3);
        for (a, b) in dist
            .iteration_losses
            .iter()
            .zip(&reference.iteration_losses)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
