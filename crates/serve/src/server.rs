//! Network front doors for the planning engine.
//!
//! Two protocols over one engine:
//!
//! * [`PlanServer`] — the native framed protocol: `u32`-LE length-prefixed
//!   JSON frames (the `chimera-comm` wire discipline, via
//!   `read_raw_frame`/`write_raw_frame`). Connections are **pipelined**: a
//!   client may have many queries outstanding; responses carry the client's
//!   `id` and may arrive out of submission order (workers finish
//!   independently). `{"op": "stats"}` and `{"op": "ping"}` are answered
//!   inline by the connection reader.
//! * [`HttpServer`] — a JSON-over-HTTP front door in the style of the obs
//!   crate's `MetricsServer`: `POST /plan` runs a query (blocking),
//!   `GET /stats` returns engine counters, `GET /healthz` is a liveness
//!   probe. Errors map to status codes via `ServeError::http_status`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chimera_comm::{read_raw_frame, write_raw_frame};
use parking_lot::Mutex;
use serde_json::Value;

use crate::engine::{PlanEngine, Responder};
use crate::error::ServeError;

/// The framed-protocol server.
pub struct PlanServer {
    /// Bound address (useful when the caller asked for port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PlanServer {
    /// Bind `addr` and serve framed plan queries against `engine`.
    pub fn bind(addr: SocketAddr, engine: Arc<PlanEngine>) -> std::io::Result<PlanServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let eng = engine.clone();
                        let stop3 = stop2.clone();
                        std::thread::spawn(move || serve_conn(stream, &eng, &stop3));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(PlanServer {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// Stop accepting connections and join the acceptor thread. Established
    /// connections drain naturally when clients hang up.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One framed connection: read frames until EOF, answer ops inline, hand
/// plan queries to the engine with a shared-writer responder.
fn serve_conn(stream: TcpStream, engine: &Arc<PlanEngine>, stop: &AtomicBool) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let body = match read_raw_frame(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(_) => return,
        };
        let parsed: Result<Value, _> = std::str::from_utf8(&body)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()));
        let raw = match parsed {
            Ok(v) => v,
            Err(e) => {
                // Unparseable bytes still get a typed response, not a
                // dropped connection. No id is recoverable.
                let mut resp = ServeError::MalformedQuery(format!("invalid JSON: {e}")).to_json();
                if let Some(obj) = resp.as_object_mut() {
                    obj.insert("id".into(), Value::Null);
                }
                if write_frame_value(&writer, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let id = raw.get("id").cloned().unwrap_or(Value::Null);
        match raw.get("op").and_then(Value::as_str) {
            Some("stats") => {
                let mut resp = engine.stats_json();
                if let Some(obj) = resp.as_object_mut() {
                    obj.insert("id".into(), id);
                }
                if write_frame_value(&writer, &resp).is_err() {
                    return;
                }
            }
            Some("ping") => {
                let resp = serde_json::json!({"ok": true, "op": "pong", "id": id});
                if write_frame_value(&writer, &resp).is_err() {
                    return;
                }
            }
            Some(other) => {
                let mut resp =
                    ServeError::MalformedQuery(format!("unknown op {other:?}")).to_json();
                if let Some(obj) = resp.as_object_mut() {
                    obj.insert("id".into(), id);
                }
                if write_frame_value(&writer, &resp).is_err() {
                    return;
                }
            }
            None => {
                engine.submit(
                    raw,
                    Responder::Frame {
                        writer: writer.clone(),
                        id,
                    },
                );
            }
        }
    }
}

fn write_frame_value(writer: &Arc<Mutex<TcpStream>>, v: &Value) -> std::io::Result<()> {
    write_raw_frame(&mut *writer.lock(), v.to_string().as_bytes())
}

/// The JSON-over-HTTP front door.
pub struct HttpServer {
    /// Bound address.
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Serve `POST /plan`, `GET /stats`, `GET /healthz` on `addr`.
    pub fn serve(addr: SocketAddr, engine: Arc<PlanEngine>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let eng = engine.clone();
                        std::thread::spawn(move || {
                            let _ = serve_http_conn(stream, &eng);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// Stop accepting and join the acceptor thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn http_response(stream: &mut TcpStream, status: u16, body: &Value) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    };
    let body = body.to_string();
    write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Read one HTTP request (request line + headers + `Content-Length` body),
/// route it, respond, close.
fn serve_http_conn(mut stream: TcpStream, engine: &Arc<PlanEngine>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            let e = ServeError::MalformedQuery("request headers too large".into());
            return http_response(&mut stream, e.http_status(), &e.to_json());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // client hung up
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default().to_string();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > 1 << 20 {
        let e = ServeError::MalformedQuery("request body too large".into());
        return http_response(&mut stream, e.http_status(), &e.to_json());
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }

    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => http_response(&mut stream, 200, &serde_json::json!({"ok": true})),
        ("GET", "/stats") => http_response(&mut stream, 200, &engine.stats_json()),
        ("POST", "/plan") => {
            let parsed: Result<Value, ServeError> = std::str::from_utf8(&body)
                .map_err(|e| ServeError::MalformedQuery(format!("invalid UTF-8 body: {e}")))
                .and_then(|s| {
                    serde_json::from_str(s)
                        .map_err(|e| ServeError::MalformedQuery(format!("invalid JSON: {e}")))
                });
            let result = parsed.and_then(|raw| engine.submit_blocking(raw));
            match result {
                Ok(v) => http_response(&mut stream, 200, &v),
                Err(e) => http_response(&mut stream, e.http_status(), &e.to_json()),
            }
        }
        _ => {
            let body = serde_json::json!({
                "ok": false,
                "error": {"code": "not_found", "message": format!("no route {method} {path}")},
            });
            http_response(&mut stream, 404, &body)
        }
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
