//! Stage → worker placement for each model replica.

use crate::ids::{ReplicaId, StageId, WorkerId};

/// Maps every `(replica, stage)` pair to the worker that holds that stage's
/// layers for that replica.
///
/// Chimera's *down* pipeline `i` (replica `2i`) maps stage `j` to worker
/// `(i * D/f + j) mod D`; the matching *up* pipeline (replica `2i+1`) maps
/// stages in the completely reverse order (§3.1, §3.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `map[replica][stage] = worker`.
    map: Vec<Vec<WorkerId>>,
    /// Number of pipeline stages `D` (== number of workers in the group).
    d: u32,
}

impl Placement {
    /// Build a placement from an explicit map. Panics if rows are not all of
    /// length `d` or reference workers `>= d`.
    pub fn new(d: u32, map: Vec<Vec<WorkerId>>) -> Self {
        assert!(!map.is_empty(), "placement needs at least one replica");
        for row in &map {
            assert_eq!(
                row.len(),
                d as usize,
                "each replica must place all D stages"
            );
            for w in row {
                assert!(w.0 < d, "worker id out of range");
            }
        }
        Placement { map, d }
    }

    /// The single linear placement used by GPipe / DAPPLE / PipeDream(-2BW):
    /// stage `j` on worker `j`.
    pub fn linear(d: u32) -> Self {
        Placement::new(d, vec![(0..d).map(WorkerId).collect()])
    }

    /// Chimera / GEMS placement with `f` down/up pipeline pairs: replica `2i`
    /// is the down pipeline starting at worker `i * D/f`, replica `2i+1` the
    /// reversed up pipeline (§3.6). `d` must be divisible by `f` and `f` must
    /// divide `d/2`.
    pub fn bidirectional(d: u32, f: u32) -> Self {
        assert!(f >= 1 && d.is_multiple_of(2), "Chimera requires an even D");
        assert!(
            (d / 2).is_multiple_of(f),
            "f must divide D/2 (f in divisors of Q = D/2, §3.6)"
        );
        let mut map = Vec::with_capacity(2 * f as usize);
        for i in 0..f {
            let base = i * (d / f);
            let down: Vec<WorkerId> = (0..d).map(|j| WorkerId((base + j) % d)).collect();
            let up: Vec<WorkerId> = (0..d).map(|j| WorkerId((base + (d - 1 - j)) % d)).collect();
            map.push(down);
            map.push(up);
        }
        Placement::new(d, map)
    }

    /// Number of stages / workers `D`.
    #[inline]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Number of model replicas (`2f` for Chimera, 2 for GEMS, 1 otherwise).
    #[inline]
    pub fn replicas(&self) -> u32 {
        self.map.len() as u32
    }

    /// Worker holding `stage` of `replica`.
    #[inline]
    pub fn worker(&self, replica: ReplicaId, stage: StageId) -> WorkerId {
        self.map[replica.idx()][stage.idx()]
    }

    /// All `(replica, stage)` pairs held by `worker`.
    pub fn held_by(&self, worker: WorkerId) -> Vec<(ReplicaId, StageId)> {
        let mut held = Vec::new();
        for (r, row) in self.map.iter().enumerate() {
            for (s, w) in row.iter().enumerate() {
                if *w == worker {
                    held.push((ReplicaId(r as u32), StageId(s as u32)));
                }
            }
        }
        held
    }

    /// Workers holding a replica of `stage` (the allreduce group for that
    /// stage within one pipeline group), deduplicated and sorted.
    pub fn stage_holders(&self, stage: StageId) -> Vec<WorkerId> {
        let mut holders: Vec<WorkerId> = self.map.iter().map(|row| row[stage.idx()]).collect();
        holders.sort_unstable();
        holders.dedup();
        holders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_places_stage_on_same_worker() {
        let p = Placement::linear(4);
        assert_eq!(p.replicas(), 1);
        for s in 0..4 {
            assert_eq!(p.worker(ReplicaId(0), StageId(s)), WorkerId(s));
        }
    }

    #[test]
    fn bidirectional_f1_matches_figure3() {
        // Figure 3: D=4, down = identity, up = reversed.
        let p = Placement::bidirectional(4, 1);
        assert_eq!(p.replicas(), 2);
        for s in 0..4 {
            assert_eq!(p.worker(ReplicaId(0), StageId(s)), WorkerId(s));
            assert_eq!(p.worker(ReplicaId(1), StageId(s)), WorkerId(3 - s));
        }
        // Every worker holds exactly two stage replicas, and their ids sum to D-1.
        for w in 0..4 {
            let held = p.held_by(WorkerId(w));
            assert_eq!(held.len(), 2);
            assert_eq!(held[0].1 .0 + held[1].1 .0, 3);
        }
    }

    #[test]
    fn bidirectional_f2_matches_figure8() {
        // Figure 8: D=8, f=2. Down pipeline1 maps stages [0..8] to workers
        // [4,5,6,7,0,1,2,3].
        let p = Placement::bidirectional(8, 2);
        assert_eq!(p.replicas(), 4);
        let down1: Vec<u32> = (0..8)
            .map(|s| p.worker(ReplicaId(2), StageId(s)).0)
            .collect();
        assert_eq!(down1, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        let up1: Vec<u32> = (0..8)
            .map(|s| p.worker(ReplicaId(3), StageId(s)).0)
            .collect();
        assert_eq!(up1, vec![3, 2, 1, 0, 7, 6, 5, 4]);
    }

    #[test]
    fn stage_holders_are_allreduce_groups() {
        let p = Placement::bidirectional(4, 1);
        assert_eq!(p.stage_holders(StageId(0)), vec![WorkerId(0), WorkerId(3)]);
        assert_eq!(p.stage_holders(StageId(1)), vec![WorkerId(1), WorkerId(2)]);
    }

    #[test]
    #[should_panic(expected = "even D")]
    fn odd_d_rejected() {
        Placement::bidirectional(3, 1);
    }

    #[test]
    #[should_panic(expected = "f must divide")]
    fn bad_f_rejected() {
        Placement::bidirectional(8, 3);
    }

    #[test]
    fn every_worker_load_is_balanced_bidirectional() {
        for (d, f) in [(4u32, 1u32), (8, 1), (8, 2), (8, 4), (16, 2), (32, 4)] {
            let p = Placement::bidirectional(d, f);
            for w in 0..d {
                assert_eq!(
                    p.held_by(WorkerId(w)).len(),
                    2 * f as usize,
                    "D={d} f={f} worker {w}"
                );
            }
        }
    }
}
