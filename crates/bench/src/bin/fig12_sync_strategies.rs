//! Figure 12: Chimera gradient-synchronization strategies (§3.2) — post-hoc
//! vs eager vs eager-opt for Bert-48, D = 4, B = 8, scaling P from 16 to 64
//! (B̂ from 256 to 1,024). Expected shape: eager-opt ≥ eager > post-hoc,
//! with the gap growing with P (more data-parallel replicas ⇒ costlier
//! allreduce to hide).

use chimera_bench::{arg_value, print_table, save_json};
use chimera_core::chimera::{chimera, ChimeraConfig};
use chimera_core::schedule::SyncStrategy;
use chimera_core::sync::place_sync;
use chimera_core::unit_time::UnitCosts;
use chimera_perf::{ClusterSpec, ModelSpec, TrainConfig};
use chimera_sim::{simulate, timeline_events};

fn main() {
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    let d = 4u32;
    let b = 8u32;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    // `--trace <path>`: overlay the three strategies of the largest (P, B̂)
    // as one Chrome-trace process each, so Perfetto shows them stacked.
    let trace_path = arg_value("--trace");
    let mut trace_events = Vec::new();
    for (p, b_hat) in [(16u32, 256u64), (32, 512), (64, 1024)] {
        let w = p / d;
        let n = (b_hat / (w as u64 * b as u64)) as u32;
        let base = chimera(&ChimeraConfig::new(d, n)).unwrap();
        let cost = TrainConfig {
            model,
            cluster,
            d,
            w,
            b,
            stage_replicas: 2,
        }
        .cost_model();
        let mut per_strategy = Vec::new();
        for (idx, strat) in [
            SyncStrategy::PostHoc,
            SyncStrategy::Eager,
            SyncStrategy::EagerOpt,
        ]
        .into_iter()
        .enumerate()
        {
            let sched = place_sync(base.clone(), strat, UnitCosts::practical());
            let rep = simulate(&sched, &cost).expect("simulates");
            if trace_path.is_some() && p == 64 {
                trace_events.extend(timeline_events(&rep.timeline, idx as u32, true));
            }
            per_strategy.push((strat, rep.throughput(b_hat)));
        }
        let post = per_strategy[0].1;
        rows.push(vec![
            p.to_string(),
            b_hat.to_string(),
            n.to_string(),
            format!("{:.1}", per_strategy[0].1),
            format!("{:.1}", per_strategy[1].1),
            format!("{:.1}", per_strategy[2].1),
            format!("{:.3}x", per_strategy[2].1 / per_strategy[1].1),
            format!("{:.3}x", per_strategy[2].1 / post),
        ]);
        json.push(serde_json::json!({
            "p": p,
            "b_hat": b_hat,
            "post_hoc": per_strategy[0].1,
            "eager": per_strategy[1].1,
            "eager_opt": per_strategy[2].1,
        }));
    }
    print_table(
        "Fig. 12: Chimera sync strategies, Bert-48, D=4, B=8 (samples/s)",
        &[
            "P",
            "B̂",
            "N",
            "post-hoc",
            "eager",
            "eager-opt",
            "opt/eager",
            "opt/post",
        ],
        &rows,
    );
    save_json("fig12_sync_strategies", serde_json::json!(json));
    if let Some(path) = trace_path {
        chimera_trace::write_chrome_trace(
            &path,
            &trace_events,
            &[(0, "post-hoc"), (1, "eager"), (2, "eager-opt")],
        )
        .expect("write Chrome trace");
        println!("[trace saved to {path} — one process per sync strategy]");
    }
}
