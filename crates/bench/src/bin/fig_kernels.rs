//! Kernel-layer throughput harness: naive vs packed-panel vs
//! packed+threaded GFLOP/s, backward-kernel rates for sim calibration, the
//! zero-skip sparse entry point on 95%-zero input, and end-to-end training
//! step time with the buffer pool on/off.
//!
//! Writes `results/kernels.json` plus `BENCH_kernels.json` at the workspace
//! root (the artifact CI uploads). The JSON carries a `calibration` section
//! (measured `bwd_over_fwd` from the three kernel variants at the headline
//! shape) that `chimera profile --calibration` feeds into the simulator's
//! unit costs. Flags:
//!
//! * `--smoke`      short run for the CI bench-smoke job; still includes
//!   the 512×1024×1024 headline shape the ROADMAP targets
//! * `--check`      enforce the committed baseline
//!   (`crates/bench/baselines/kernels.json`, >20% regression fails), the
//!   `speedup_vs_naive ≥ 4.0` floor on the headline shape, threading
//!   (mt ≥ 1.5× 1t when ≥2 cores are actually available, mt ≥ 0.9× 1t
//!   otherwise), and `end_to_end` pool ratio ≥ 1.0
//! * `--threads N`  intra-op thread count (default: `max(4, cores)`)
//!
//! The committed baseline is deliberately conservative — set well below
//! typical dev-machine throughput — so the gate catches structural
//! regressions (a lost packed panel, an accidental bounds check in the
//! microkernel) rather than CI-runner noise.

use std::process::ExitCode;
use std::time::Instant;

use chimera_bench::{arg_value, print_table, save_json};
use chimera_nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera_tensor::{kernels, pool, Rng, Tensor};

/// Time `body` (called repeatedly) and return mean seconds per call:
/// at least `min_reps` calls and at least ~0.2 s of total wall clock.
fn time_per_call(min_reps: u32, mut body: impl FnMut()) -> f64 {
    body(); // warm the caches / pool
    let mut reps = 0u32;
    let start = Instant::now();
    while reps < min_reps || start.elapsed().as_secs_f64() < 0.2 {
        body();
        reps += 1;
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    2.0 * (m as f64) * (k as f64) * (n as f64) / secs / 1e9
}

fn randvec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    (0..len).map(|_| rng.normal()).collect()
}

/// The ROADMAP's headline kernel shape: large enough that every GEMM
/// dimension spills all cache levels, so packing either pays or doesn't.
const HEADLINE: (usize, usize, usize) = (512, 1024, 1024);

struct MatmulRow {
    shape: String,
    naive: f64,
    tiled_1t: f64,
    tiled_mt: f64,
}

/// Naive vs tiled vs tiled+threaded GFLOP/s for one `m×k×n` product.
fn bench_shape(m: usize, k: usize, n: usize, threads: usize) -> MatmulRow {
    let a = randvec(m * k, 1);
    let b = randvec(k * n, 2);
    let mut out = vec![0.0f32; m * n];

    let naive = time_per_call(3, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        kernels::naive::matmul_into(&a, &b, &mut out, m, k, n);
    });
    kernels::set_threads(1);
    let tiled_1t = time_per_call(3, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        kernels::matmul_into(&a, &b, &mut out, m, k, n);
    });
    kernels::set_threads(threads);
    let tiled_mt = time_per_call(3, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        kernels::matmul_into(&a, &b, &mut out, m, k, n);
    });
    kernels::set_threads(1);

    MatmulRow {
        shape: format!("{m}x{k}x{n}"),
        naive: gflops(m, k, n, naive),
        tiled_1t: gflops(m, k, n, tiled_1t),
        tiled_mt: gflops(m, k, n, tiled_mt),
    }
}

/// Single-threaded GFLOP/s of the two backward-pass kernels (`aᵀ@b` for
/// `dW`, `a@bᵀ` for `dX`) at one shape, for unit-cost calibration.
fn bench_backward(m: usize, k: usize, n: usize) -> (f64, f64) {
    let a = randvec(m * k, 5);
    let at = randvec(k * m, 6);
    let b = randvec(k * n, 7);
    let bt = randvec(n * k, 8);
    let mut out = vec![0.0f32; m * n];
    kernels::set_threads(1);
    let t_mm = time_per_call(3, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        kernels::t_matmul_into(&at, &b, &mut out, k, m, n);
    });
    let mm_t = time_per_call(3, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        kernels::matmul_t_into(&a, &bt, &mut out, m, k, n);
    });
    (gflops(m, k, n, t_mm), gflops(m, k, n, mm_t))
}

/// Dense kernel vs the documented sparse-aware entry point on an input
/// that is 95% exact zeros (effective GFLOP/s: dense-equivalent flops over
/// wall clock, so the zero-skip win shows up as a higher number).
fn bench_zero_skip(m: usize, k: usize, n: usize) -> (f64, f64) {
    let mut rng = Rng::new(3);
    let mut a = Tensor::normal(m, k, 1.0, &mut rng);
    for (i, v) in a.data_mut().iter_mut().enumerate() {
        if i % 20 != 0 {
            *v = 0.0;
        }
    }
    let b = Tensor::normal(k, n, 1.0, &mut rng);
    let dense = time_per_call(3, || {
        std::hint::black_box(a.matmul(&b));
    });
    let skip = time_per_call(3, || {
        std::hint::black_box(a.matmul_zero_skip(&b));
    });
    (gflops(m, k, n, dense), gflops(m, k, n, skip))
}

struct EndToEnd {
    pool_on_ms: f64,
    pool_off_ms: f64,
    hit_rate: f64,
}

/// Per-iteration step time of the sequential reference trainer with the
/// buffer pool on vs off, plus the steady-state pool hit rate.
///
/// The two modes **alternate** round-by-round and the **minimum** per mode
/// is kept: the `--check` gate asserts pool-on is never slower than
/// pool-off, best-of-N strips container-scheduler noise from a
/// sub-millisecond loop (the mean once reported pool-on "losing" at ratio
/// 0.94 purely from a descheduling blip), and interleaving makes slow
/// machine drift — thermals, a background compile — hit both modes equally
/// instead of whichever happened to run second.
fn bench_end_to_end(iters: u32) -> EndToEnd {
    let cfg = ModelConfig::tiny();
    let n = 4u32;
    const ROUNDS: u32 = 5;
    let mk = || {
        let mut r = ReferenceTrainer::new(
            Stage::build_all(cfg, 2),
            SyntheticData::new(cfg, 7),
            2,
            0.05,
            0.9,
        );
        r.train_iteration(0, n); // warm-up populates the pool classes
        r
    };
    pool::set_enabled(true);
    let mut on = mk();
    pool::reset_stats(); // hit rate below covers only pooled timed iterations
    pool::set_enabled(false);
    let mut off = mk();
    let mut best = [f64::INFINITY; 2];
    for round in 0..ROUNDS {
        for (slot, pooled) in [(0usize, true), (1usize, false)] {
            pool::set_enabled(pooled);
            let r = if pooled { &mut on } else { &mut off };
            let start = Instant::now();
            for it in 1..=iters {
                let sample = u64::from(round) * u64::from(iters) + u64::from(it);
                r.train_iteration(sample * u64::from(n), n);
            }
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e3 / f64::from(iters));
        }
    }
    pool::set_enabled(true);
    EndToEnd {
        pool_on_ms: best[0],
        pool_off_ms: best[1],
        hit_rate: pool::stats().hit_rate(),
    }
}

/// The committed floor: current tiled+threaded GFLOP/s per shape must stay
/// within 20% of these values.
fn load_baseline() -> Option<serde_json::Value> {
    let path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => format!("{m}/baselines/kernels.json"),
        Err(_) => "crates/bench/baselines/kernels.json".to_string(),
    };
    let text = std::fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

fn check_regressions(rows: &[MatmulRow], e2e: &EndToEnd, parallelism: usize) -> bool {
    let Some(baseline) = load_baseline() else {
        eprintln!("--check: no readable baseline; failing");
        return false;
    };
    let Some(shapes) = baseline.get("tiled_mt_gflops").and_then(|v| v.as_object()) else {
        eprintln!("--check: baseline missing tiled_mt_gflops; failing");
        return false;
    };
    let mut ok = true;
    for (shape, floor) in shapes {
        let Some(floor) = floor.as_f64() else {
            continue;
        };
        match rows.iter().find(|r| &r.shape == shape) {
            Some(r) if r.tiled_mt >= 0.8 * floor => {
                println!(
                    "check {shape}: {:.2} GFLOP/s >= 0.8 x {floor:.2} ok",
                    r.tiled_mt
                );
            }
            Some(r) => {
                eprintln!(
                    "check {shape}: REGRESSION {:.2} GFLOP/s < 0.8 x baseline {floor:.2}",
                    r.tiled_mt
                );
                ok = false;
            }
            None => {} // baseline shape not measured in this mode
        }
    }
    // Threading-regression gate: the multi-threaded kernel must never lose
    // to single-threaded beyond noise. This caught the PAR_MIN_FLOPS
    // mis-tune once (mt 0.89× 1t on small shapes, PR-5 era) — shapes below
    // the gate now run the identical sequential path, larger shapes must
    // show threading paying for itself. The 0.9 factor absorbs
    // container-scheduler noise, not structural losses. On the headline
    // shape, when the machine actually has ≥2 cores, threading must *win*:
    // mt ≥ 1.5× 1t (the 2D grid makes every shape parallel-friendly, so a
    // miss here means the partitioning broke, not that the shape is hard).
    let headline = format!("{}x{}x{}", HEADLINE.0, HEADLINE.1, HEADLINE.2);
    for r in rows {
        if r.tiled_mt < 0.9 * r.tiled_1t {
            eprintln!(
                "check {}: THREADING REGRESSION mt {:.2} GFLOP/s < 0.9 x 1t {:.2} \
                 (raise PAR_MIN_FLOPS or fix the parallel partitioning)",
                r.shape, r.tiled_mt, r.tiled_1t
            );
            ok = false;
        }
        if r.shape == headline {
            // The packed engine must hold the ROADMAP's ≥4× floor over the
            // naive loops single-threaded — thread count can't rescue it.
            if r.tiled_1t < 4.0 * r.naive {
                eprintln!(
                    "check {}: PACKED-ENGINE REGRESSION tiled_1t {:.2} GFLOP/s \
                     < 4.0 x naive {:.2}",
                    r.shape, r.tiled_1t, r.naive
                );
                ok = false;
            } else {
                println!(
                    "check {}: speedup_vs_naive {:.2} >= 4.0 ok",
                    r.shape,
                    r.tiled_1t / r.naive
                );
            }
            if parallelism >= 2 && r.tiled_mt < 1.5 * r.tiled_1t {
                eprintln!(
                    "check {}: THREADING REGRESSION mt {:.2} GFLOP/s < 1.5 x 1t \
                     {:.2} on {parallelism} cores",
                    r.shape, r.tiled_mt, r.tiled_1t
                );
                ok = false;
            }
        }
    }
    // Pool-payoff gate: recycling buffers must never cost step time. Both
    // sides are best-of-3, so a ratio below 1.0 is structural (a slow pool
    // hot path), not scheduler noise.
    let ratio = e2e.pool_off_ms / e2e.pool_on_ms;
    if ratio < 1.0 {
        eprintln!(
            "check end_to_end: POOL REGRESSION step_time_ratio_off_over_on \
             {ratio:.3} < 1.0 (pool on is slower than pool off)"
        );
        ok = false;
    } else {
        println!("check end_to_end: pool ratio {ratio:.3} >= 1.0 ok");
    }
    ok
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check");
    let threads = arg_value("--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .max(4)
        });

    // Smoke keeps the small shape for quick signal but must also carry the
    // headline shape: that's the number the ROADMAP targets and the
    // speedup_vs_naive gate asserts on, so CI has to track it.
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(128, 256, 256), HEADLINE]
    } else {
        &[(128, 256, 256), (256, 512, 512), HEADLINE]
    };

    let rows: Vec<MatmulRow> = shapes
        .iter()
        .map(|&(m, k, n)| bench_shape(m, k, n, threads))
        .collect();

    print_table(
        &format!("Matmul GFLOP/s (mt = {threads} threads)"),
        &["shape", "naive", "tiled 1t", "tiled mt", "mt/naive"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.shape.clone(),
                    format!("{:.2}", r.naive),
                    format!("{:.2}", r.tiled_1t),
                    format!("{:.2}", r.tiled_mt),
                    format!("{:.2}x", r.tiled_mt / r.naive),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Backward-kernel rates at the headline shape → measured bwd/fwd ratio
    // for the simulator's unit costs (`chimera profile --calibration`).
    let (fwd_gf, t_mm_gf, mm_t_gf) = {
        let (m, k, n) = HEADLINE;
        let fwd = rows
            .iter()
            .find(|r| r.shape == format!("{m}x{k}x{n}"))
            .map_or(0.0, |r| r.tiled_1t);
        let (t_mm, mm_t) = bench_backward(m, k, n);
        (fwd, t_mm, mm_t)
    };
    // Backward = dW (aᵀ@b) + dX (a@bᵀ), each the same flop count as the
    // forward product, so time ratio = fwd_rate/t_mm_rate + fwd_rate/mm_t_rate.
    let bwd_over_fwd = fwd_gf / t_mm_gf + fwd_gf / mm_t_gf;
    print_table(
        "Backward-kernel calibration (1t, headline shape)",
        &["kernel", "GFLOP/s", "rel. to fwd"],
        &[
            vec!["fwd a@b".into(), format!("{fwd_gf:.2}"), "1.00".into()],
            vec![
                "dW aT@b".into(),
                format!("{t_mm_gf:.2}"),
                format!("{:.2}", fwd_gf / t_mm_gf),
            ],
            vec![
                "dX a@bT".into(),
                format!("{mm_t_gf:.2}"),
                format!("{:.2}", fwd_gf / mm_t_gf),
            ],
            vec!["bwd total".into(), "-".into(), format!("{bwd_over_fwd:.2}")],
        ],
    );

    let (zs_m, zs_k, zs_n) = if smoke {
        (128, 256, 256)
    } else {
        (256, 512, 512)
    };
    let (dense_gf, skip_gf) = bench_zero_skip(zs_m, zs_k, zs_n);
    print_table(
        "Zero-skip on 95%-zero input (effective GFLOP/s)",
        &["shape", "dense", "zero-skip", "skip/dense"],
        &[vec![
            format!("{zs_m}x{zs_k}x{zs_n}"),
            format!("{dense_gf:.2}"),
            format!("{skip_gf:.2}"),
            format!("{:.2}x", skip_gf / dense_gf),
        ]],
    );

    let e2e = bench_end_to_end(if smoke { 2 } else { 5 });
    print_table(
        "End-to-end reference-trainer step time",
        &["pool", "ms/iter", "hit rate"],
        &[
            vec![
                "on".into(),
                format!("{:.2}", e2e.pool_on_ms),
                format!("{:.3}", e2e.hit_rate),
            ],
            vec!["off".into(), format!("{:.2}", e2e.pool_off_ms), "-".into()],
        ],
    );

    let parallelism = threads.min(kernels::hw_parallelism());
    let pack = kernels::pack_stats();
    let payload = serde_json::json!({
        "threads": threads,
        "parallelism": parallelism,
        "simd": kernels::simd_available(),
        "smoke": smoke,
        "matmul": rows.iter().map(|r| serde_json::json!({
            "shape": r.shape,
            "naive_gflops": r.naive,
            "tiled_1t_gflops": r.tiled_1t,
            "tiled_mt_gflops": r.tiled_mt,
            // Single-threaded ratio: the packed engine's win over the naive
            // loops, independent of how many cores the runner has.
            "speedup_vs_naive": r.tiled_1t / r.naive,
            "speedup_mt_vs_1t": r.tiled_mt / r.tiled_1t,
        })).collect::<Vec<_>>(),
        "calibration": serde_json::json!({
            "shape": format!("{}x{}x{}", HEADLINE.0, HEADLINE.1, HEADLINE.2),
            "fwd_gflops": fwd_gf,
            "t_matmul_gflops": t_mm_gf,
            "matmul_t_gflops": mm_t_gf,
            "bwd_over_fwd": bwd_over_fwd,
        }),
        "pack": serde_json::json!({
            "calls": pack.calls,
            "elems": pack.elems,
        }),
        "zero_skip": serde_json::json!({
            "shape": format!("{zs_m}x{zs_k}x{zs_n}"),
            "zero_fraction": 0.95,
            "dense_gflops": dense_gf,
            "skip_gflops": skip_gf,
            "speedup": skip_gf / dense_gf,
        }),
        "end_to_end": serde_json::json!({
            "pool_on_ms_per_iter": e2e.pool_on_ms,
            "pool_off_ms_per_iter": e2e.pool_off_ms,
            "pool_hit_rate": e2e.hit_rate,
            "step_time_ratio_off_over_on": e2e.pool_off_ms / e2e.pool_on_ms,
        }),
    });
    save_json("kernels", payload.clone());

    // The CI artifact lives at the workspace root next to the other BENCH_*
    // outputs.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map_or_else(|_| ".".to_string(), |m| format!("{m}/../.."));
    let bench_path = format!("{root}/BENCH_kernels.json");
    std::fs::write(
        &bench_path,
        serde_json::to_string_pretty(&payload).expect("serialize"),
    )
    .expect("write BENCH_kernels.json");
    println!("[saved {bench_path}]");

    if check && !check_regressions(&rows, &e2e, parallelism) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
