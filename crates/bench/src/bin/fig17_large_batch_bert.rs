//! Figure 17: scaling to large mini-batches for Bert-48 on 32 GPU nodes
//! (B̂ from 512 to 8,192), comparing Chimera's three §3.5 strategies —
//! *direct concatenation*, *forward doubling*, *backward halving* — against
//! the tuned baselines. Paper: direct wins on Bert-48; for B̂ ≥ 1,024
//! Chimera(direct) averages 1.13x over GPipe, 2.07x over GEMS, 1.06x over
//! DAPPLE, and tracks PipeDream-2BW.

use chimera_bench::scaling::baseline_schemes;
use chimera_bench::{candidate_headers, candidate_json, candidate_row, print_table, save_json};
use chimera_core::chimera::ScaleMethod;
use chimera_perf::planner::{best, plan_chimera};
use chimera_perf::{ClusterSpec, ModelSpec};

fn main() {
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    let p = 32u32;
    let mut json = Vec::new();
    for b_hat in [512u64, 1024, 2048, 4096, 8192] {
        let mut rows = Vec::new();
        let mut add = |label: String, c: Option<chimera_perf::Candidate>| {
            if let Some(c) = c {
                let mut row = candidate_row(&c);
                row[0] = label.clone();
                rows.push(row);
                let mut j = candidate_json(&c);
                j["b_hat_setting"] = serde_json::json!(b_hat);
                j["label"] = serde_json::json!(label);
                json.push(j);
            }
        };
        for scheme in baseline_schemes() {
            add(scheme.label(), best(scheme, model, cluster, p, b_hat));
        }
        for scale in [
            ScaleMethod::Direct,
            ScaleMethod::ForwardDoubling { recompute: true },
            ScaleMethod::BackwardHalving,
        ] {
            let label = match scale {
                ScaleMethod::Direct => "Chimera (direct)",
                ScaleMethod::ForwardDoubling { .. } => "Chimera (fwd-doubling)",
                ScaleMethod::BackwardHalving => "Chimera (bwd-halving)",
            };
            add(
                label.to_string(),
                plan_chimera(1, scale, model, cluster, p, b_hat),
            );
        }
        print_table(
            &format!("Fig. 17: Bert-48 on P=32, B̂={b_hat}"),
            &candidate_headers(),
            &rows,
        );
    }
    save_json("fig17_large_batch_bert", serde_json::json!(json));
}
