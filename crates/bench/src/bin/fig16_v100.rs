//! Figure 16: weak scaling for Bert-48 (sequence length 512) on the 32×V100
//! cluster — P from 16 to 32, B̂ from 128 to 256. Paper: Chimera improves
//! 1.10x–2.39x over synchronous and 1.05x–1.89x over asynchronous baselines.

use chimera_bench::scaling::{best_per_scheme, chimera_speedups};
use chimera_bench::{candidate_headers, candidate_json, candidate_row, print_table, save_json};
use chimera_core::chimera::ScaleMethod;
use chimera_perf::{ClusterSpec, ModelSpec};

fn main() {
    let model = ModelSpec::bert48_seq512();
    let cluster = ClusterSpec::v100_cluster();
    let mut json = Vec::new();
    for (p, b_hat) in [(16u32, 128u64), (32, 256)] {
        let results = best_per_scheme(model, cluster, p, b_hat, ScaleMethod::Direct);
        let rows: Vec<Vec<String>> = results
            .iter()
            .filter_map(|(_, c)| c.as_ref().map(candidate_row))
            .collect();
        print_table(
            &format!("Fig. 16: Bert-48/seq512 on V100 cluster, P={p}, B̂={b_hat}"),
            &candidate_headers(),
            &rows,
        );
        for (name, speedup) in chimera_speedups(&results) {
            println!("  Chimera vs {name}: {speedup:.2}x");
        }
        for (name, c) in &results {
            if let Some(c) = c {
                let mut j = candidate_json(c);
                j["p"] = serde_json::json!(p);
                j["label"] = serde_json::json!(name);
                json.push(j);
            }
        }
    }
    save_json("fig16_v100", serde_json::json!(json));
}
