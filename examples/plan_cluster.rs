//! Configuration planning: given a model, a cluster and a mini-batch size,
//! find the best (W, D, B) for every pipeline scheme — the §4.2 workflow.
//!
//! ```sh
//! cargo run --release --example plan_cluster -- [workers] [mini_batch]
//! ```

use chimera::core::chimera::ScaleMethod;
use chimera::perf::planner::{best, plan_chimera, PlanScheme};
use chimera::perf::{ClusterSpec, ModelSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let b_hat: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(512);
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    println!(
        "Planning {} on {} x {} (Piz Daint profile), B̂ = {b_hat}\n",
        model.name, p, cluster.device.name
    );

    println!(
        "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12} {:>8}",
        "scheme", "W", "D", "B", "N", "rec", "samples/s", "peakGiB"
    );
    for scheme in [
        PlanScheme::GPipe,
        PlanScheme::Dapple,
        PlanScheme::Gems,
        PlanScheme::PipeDream,
        PlanScheme::PipeDream2Bw,
    ] {
        match best(scheme, model, cluster, p, b_hat) {
            Some(c) => println!(
                "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12.1} {:>8.2}",
                scheme.label(),
                c.w,
                c.d,
                c.b,
                c.n,
                if c.recompute { "R" } else { "-" },
                c.throughput,
                c.peak_mem as f64 / (1u64 << 30) as f64
            ),
            None => println!("{:<24} (no feasible configuration)", scheme.label()),
        }
    }
    // Chimera: the §3.4 model picks the configuration — print its predicted
    // vs simulated iteration time too.
    for scale in [
        ScaleMethod::Direct,
        ScaleMethod::ForwardDoubling { recompute: true },
        ScaleMethod::BackwardHalving,
    ] {
        if let Some(c) = plan_chimera(1, scale, model, cluster, p, b_hat) {
            println!(
                "{:<24} {:>4} {:>4} {:>4} {:>5} {:>4} {:>12.1} {:>8.2}   (Eq.1 predicted {:.3}s, simulated {:.3}s)",
                c.scheme.label(),
                c.w,
                c.d,
                c.b,
                c.n,
                if c.recompute { "R" } else { "-" },
                c.throughput,
                c.peak_mem as f64 / (1u64 << 30) as f64,
                c.predicted_s.unwrap_or(f64::NAN),
                c.iter_time_s
            );
        }
    }
}
