//! Client for the framed planning protocol.
//!
//! [`PlanClient`] speaks the `PlanServer` wire format: length-prefixed JSON
//! frames, pipelined, with responses matched to requests by the echoed
//! `id`. The simple path is [`PlanClient::query`] (send one, wait for its
//! answer); load generators use the split [`PlanClient::send`] /
//! [`PlanClient::recv`] halves to keep many queries in flight on one
//! connection.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};

use chimera_comm::{read_raw_frame, write_raw_frame};
use serde_json::Value;

use crate::error::ServeError;

/// A connection to a [`crate::server::PlanServer`].
pub struct PlanClient {
    reader: TcpStream,
    writer: TcpStream,
    next_id: u64,
    /// Responses that arrived while waiting for a different id (pipelined
    /// connections answer out of order).
    pending: HashMap<u64, Value>,
}

impl PlanClient {
    /// Connect to a running plan server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<PlanClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = writer.try_clone()?;
        Ok(PlanClient {
            reader,
            writer,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    /// Send `query` (an `id` is injected if absent) and return the assigned
    /// id without waiting for the response.
    pub fn send(&mut self, mut query: Value) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(obj) = query.as_object_mut() {
            if !obj.contains_key("id") {
                obj.insert("id".into(), serde_json::json!(id));
            }
        }
        write_raw_frame(&mut self.writer, query.to_string().as_bytes())
            .map_err(|e| ServeError::Internal(format!("send failed: {e}")))?;
        Ok(id)
    }

    /// Wait for the response whose `id` is `want`, buffering any other
    /// responses that arrive first.
    pub fn recv(&mut self, want: u64) -> Result<Value, ServeError> {
        if let Some(v) = self.pending.remove(&want) {
            return Ok(v);
        }
        loop {
            let body = read_raw_frame(&mut self.reader)
                .map_err(|e| ServeError::Internal(format!("recv failed: {e}")))?
                .ok_or_else(|| ServeError::Internal("server closed the connection".into()))?;
            let v: Value = std::str::from_utf8(&body)
                .ok()
                .and_then(|s| serde_json::from_str(s).ok())
                .ok_or_else(|| ServeError::Internal("unparseable response frame".into()))?;
            match v.get("id").and_then(Value::as_u64) {
                Some(id) if id == want => return Ok(v),
                Some(id) => {
                    self.pending.insert(id, v);
                }
                None => {
                    // A response we cannot match (e.g. the server could not
                    // recover an id). Surface it rather than spinning.
                    return Ok(v);
                }
            }
        }
    }

    /// Send one query and block for its response.
    pub fn query(&mut self, query: Value) -> Result<Value, ServeError> {
        let id = self.send(query)?;
        self.recv(id)
    }

    /// Fetch the server's live counters (`{"op": "stats"}`).
    pub fn stats(&mut self) -> Result<Value, ServeError> {
        self.query(serde_json::json!({"op": "stats"}))
    }

    /// Round-trip a ping.
    pub fn ping(&mut self) -> Result<Value, ServeError> {
        self.query(serde_json::json!({"op": "ping"}))
    }
}
