//! Deep semantic validation of schedules and weight-version analysis.
//!
//! Beyond structural well-formedness, a schedule must (a) execute without
//! deadlock, (b) run every micro-batch forward and backward through every
//! stage exactly once, and (c) for synchronous schemes, keep a single weight
//! version per stage. For asynchronous schemes this module quantifies the
//! staleness and weight-stash requirements that Table 2 reports.

use std::collections::HashMap;

use crate::ids::{MicroId, ReplicaId, StageId, WorkerId};
use crate::op::{Chunk, OpKind};
use crate::schedule::Schedule;
use crate::unit_time::{execute, BlockedOp, ExecError, UnitCosts};

/// A semantic violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The schedule deadlocks under dependency-driven execution. Carries the
    /// full blocked `(worker, op index)` set so this dynamic path and the
    /// static `chimera-verify` analysis report comparable diagnostics.
    Deadlock {
        /// Every worker stuck at its next op when progress stopped.
        blocked: Vec<BlockedOp>,
    },
    /// A micro-batch's coverage at some stage is wrong (missing, duplicated,
    /// or inconsistent halves).
    Coverage {
        /// Offending micro.
        micro: MicroId,
        /// Offending stage.
        stage: StageId,
        /// Description of the problem.
        detail: String,
    },
    /// An allreduce launch precedes the last backward of its stage replica.
    PrematureSync {
        /// Worker on which the violation occurs.
        worker: WorkerId,
        /// Stage whose sync is premature.
        stage: StageId,
    },
    /// A launch without a matching wait or vice versa.
    UnbalancedSync {
        /// Worker on which the violation occurs.
        worker: WorkerId,
        /// Stage with unbalanced ops.
        stage: StageId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Deadlock { blocked } => {
                write!(f, "deadlock: {} worker(s) blocked (", blocked.len())?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{b}")?;
                }
                f.write_str(")")
            }
            ValidationError::Coverage {
                micro,
                stage,
                detail,
            } => {
                write!(f, "coverage error for {micro} at {stage}: {detail}")
            }
            ValidationError::PrematureSync { worker, stage } => {
                write!(
                    f,
                    "allreduce for {stage} launched before its last backward on {worker}"
                )
            }
            ValidationError::UnbalancedSync { worker, stage } => {
                write!(
                    f,
                    "unbalanced allreduce launch/wait for {stage} on {worker}"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate `sched`; returns the executed timeline makespan (under equal
/// costs) on success.
pub fn validate(sched: &Schedule) -> Result<u64, ValidationError> {
    sched.assert_well_formed();
    coverage(sched)?;
    // Asynchronous schemes legitimately synchronize mid-stream (PipeDream
    // syncs after every micro-batch), so the launch-after-last-backward rule
    // only applies to flushing schedules; balance is checked for all.
    sync_placement(sched, sched.flushes)?;
    let tl = execute(sched, UnitCosts::equal()).map_err(|e| match e {
        ExecError::Deadlock { blocked } => ValidationError::Deadlock { blocked },
        // `execute` only fails by deadlocking; keep the mapping total anyway.
        other => ValidationError::Deadlock {
            blocked: vec![BlockedOp {
                worker: WorkerId(0),
                op_index: 0,
                op: other.to_string(),
            }],
        },
    })?;
    Ok(tl.makespan)
}

/// Every micro must be forwarded exactly once and backwarded exactly once
/// (or as two consistent halves) at every stage, within a single replica.
fn coverage(sched: &Schedule) -> Result<(), ValidationError> {
    // (micro, stage) -> (fwd half-units, bwd half-units, replica)
    let mut cover: HashMap<(MicroId, StageId), (u32, u32, Option<ReplicaId>)> = HashMap::new();
    for (_, _, op) in sched.iter_ops() {
        if !op.is_compute() {
            continue;
        }
        for m in op.covered_micros() {
            let entry = cover.entry((m, op.stage)).or_insert((0, 0, None));
            let units = match op.chunk {
                Chunk::Half(_) => 1,
                _ => 2,
            };
            match op.kind {
                OpKind::Forward => entry.0 += units,
                OpKind::Backward { .. } => entry.1 += units,
                _ => unreachable!(),
            }
            match entry.2 {
                None => entry.2 = Some(op.replica),
                Some(r) if r != op.replica => {
                    return Err(ValidationError::Coverage {
                        micro: m,
                        stage: op.stage,
                        detail: format!("processed by two replicas {r} and {}", op.replica),
                    })
                }
                _ => {}
            }
        }
    }
    let micros = sched.micros();
    for &m in &micros {
        for s in 0..sched.d {
            let stage = StageId(s);
            match cover.get(&(m, stage)) {
                None => {
                    return Err(ValidationError::Coverage {
                        micro: m,
                        stage,
                        detail: "never scheduled".into(),
                    })
                }
                Some(&(f, b, _)) => {
                    if f != 2 {
                        return Err(ValidationError::Coverage {
                            micro: m,
                            stage,
                            detail: format!("forward coverage {f}/2 half-units"),
                        });
                    }
                    if b != 2 {
                        return Err(ValidationError::Coverage {
                            micro: m,
                            stage,
                            detail: format!("backward coverage {b}/2 half-units"),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Launches must follow the last backward of their stage replica, and every
/// launch needs exactly one wait after it.
fn sync_placement(sched: &Schedule, check_premature: bool) -> Result<(), ValidationError> {
    for (w, ops) in sched.workers.iter().enumerate() {
        let worker = WorkerId(w as u32);
        let mut balance: HashMap<(StageId, ReplicaId), i64> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            match op.kind {
                OpKind::AllReduceLaunch => {
                    *balance.entry((op.stage, op.replica)).or_default() += 1;
                    if check_premature
                        && ops[i + 1..].iter().any(|o| {
                            o.is_backward() && o.stage == op.stage && o.replica == op.replica
                        })
                    {
                        return Err(ValidationError::PrematureSync {
                            worker,
                            stage: op.stage,
                        });
                    }
                }
                OpKind::AllReduceWait => {
                    *balance.entry((op.stage, op.replica)).or_default() -= 1;
                    if balance[&(op.stage, op.replica)] < 0 {
                        return Err(ValidationError::UnbalancedSync {
                            worker,
                            stage: op.stage,
                        });
                    }
                }
                _ => {}
            }
        }
        for ((stage, _), v) in balance {
            if v != 0 {
                return Err(ValidationError::UnbalancedSync { worker, stage });
            }
        }
    }
    Ok(())
}

/// When weights advance (the update rule of the scheme under analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateRule {
    /// PipeDream: the stage's weights advance after every micro-batch
    /// backward.
    PerMicro,
    /// Updates at iteration boundaries (every `micros_per_iter` backwards on
    /// a stage replica), becoming visible `delay` iterations later.
    /// Synchronous schemes are `delay = 0`; PipeDream-2BW is `delay = 1`.
    PerIteration {
        /// Micros per iteration per worker.
        micros_per_iter: u32,
        /// Iterations between gradient availability and weight visibility.
        delay: u32,
    },
}

/// Weight-version requirements and staleness of a schedule under an update
/// rule (Table 2's "weights memory" and "convergence friendly" columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightReport {
    /// Maximum weight versions simultaneously alive, per worker (in units of
    /// one stage replica's weights, summed over the replicas it holds).
    pub max_versions: Vec<u32>,
    /// Maximum staleness observed: number of updates that happened between
    /// the version a micro-batch's forward used and the version current when
    /// its gradient was applied. Zero iff the schedule is equivalent to
    /// mini-batch SGD.
    pub max_staleness: u32,
}

/// Analyze weight versions. The schedule is walked per worker in op order;
/// for a stage replica, forward `m` records the current version, backward `m`
/// requires it (stashed until then) and may trigger an update per `rule`.
pub fn weight_analysis(sched: &Schedule, rule: UpdateRule) -> WeightReport {
    let mut max_versions = Vec::with_capacity(sched.num_workers());
    let mut max_staleness = 0u32;
    for ops in &sched.workers {
        // Per (replica, stage): current version, pending-version activation,
        // per-micro used version, backward count.
        #[derive(Default)]
        struct StageState {
            version: u32,
            produced: u32,     // updates produced so far
            pending: Vec<u32>, // versions produced but not yet visible
            used: HashMap<MicroId, u32>,
            backwards: u32,
        }
        let mut states: HashMap<(ReplicaId, StageId), StageState> = HashMap::new();
        let mut worker_peak = 0u32;
        // Track halves so a micro's backward counts once.
        let mut half_seen: HashMap<(ReplicaId, StageId, MicroId), u32> = HashMap::new();
        for op in ops {
            if !op.is_compute() {
                continue;
            }
            let st = states.entry((op.replica, op.stage)).or_default();
            match op.kind {
                OpKind::Forward => {
                    for m in op.covered_micros() {
                        st.used.insert(m, st.version);
                    }
                }
                OpKind::Backward { .. } => {
                    let mut completed: Vec<MicroId> = Vec::new();
                    for m in op.covered_micros() {
                        match op.chunk {
                            Chunk::Half(_) => {
                                let seen = half_seen.entry((op.replica, op.stage, m)).or_insert(0);
                                *seen += 1;
                                if *seen == 2 {
                                    completed.push(m);
                                }
                            }
                            _ => completed.push(m),
                        }
                    }
                    for m in completed {
                        let used = st.used.remove(&m).unwrap_or(st.version);
                        max_staleness = max_staleness.max(st.version - used);
                        st.backwards += 1;
                        match rule {
                            UpdateRule::PerMicro => {
                                st.version += 1;
                            }
                            UpdateRule::PerIteration {
                                micros_per_iter,
                                delay,
                            } => {
                                if st.backwards.is_multiple_of(micros_per_iter) {
                                    st.produced += 1;
                                    // Update `produced` creates version
                                    // `produced` from gradients computed at
                                    // the current version; SGD equivalence
                                    // requires them computed at `produced-1`.
                                    // The shortfall is the *application*
                                    // staleness (PipeDream-2BW: 1).
                                    max_staleness = max_staleness
                                        .max((st.produced - 1).saturating_sub(st.version));
                                    st.pending.push(st.produced);
                                    if st.pending.len() > delay as usize {
                                        st.version = st.pending.remove(0).max(st.version);
                                    }
                                }
                            }
                        }
                    }
                }
                _ => unreachable!(),
            }
            // Versions alive on this worker right now: for each stage
            // replica, the current version plus each older version still
            // needed by an in-flight micro.
            let alive: u32 = states
                .values()
                .map(|s| {
                    let mut versions: Vec<u32> = s.used.values().copied().collect();
                    versions.push(s.version);
                    versions.sort_unstable();
                    versions.dedup();
                    versions.len() as u32
                })
                .sum();
            worker_peak = worker_peak.max(alive);
        }
        max_versions.push(worker_peak);
    }
    WeightReport {
        max_versions,
        max_staleness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{dapple, gems, gpipe, pipedream, pipedream_2bw};
    use crate::chimera::{chimera, ChimeraConfig, ScaleMethod};
    use crate::repeat::concat_iterations;

    #[test]
    fn all_generators_validate() {
        validate(&gpipe(4, 8)).unwrap();
        validate(&dapple(4, 8)).unwrap();
        validate(&gems(4, 8)).unwrap();
        validate(&pipedream(4, 4)).unwrap();
        validate(&pipedream_2bw(4, 8)).unwrap();
        validate(&chimera(&ChimeraConfig::new(4, 4)).unwrap()).unwrap();
        validate(&chimera(&ChimeraConfig::new(8, 32)).unwrap()).unwrap();
        validate(
            &chimera(&ChimeraConfig {
                d: 8,
                n: 32,
                f: 2,
                scale: ScaleMethod::ForwardDoubling { recompute: true },
            })
            .unwrap(),
        )
        .unwrap();
        validate(
            &chimera(&ChimeraConfig {
                d: 8,
                n: 32,
                f: 1,
                scale: ScaleMethod::BackwardHalving,
            })
            .unwrap(),
        )
        .unwrap();
    }

    #[test]
    fn missing_backward_detected() {
        let mut s = gpipe(2, 2);
        // Drop the last backward on worker 1.
        let idx = s.workers[1]
            .iter()
            .rposition(super::super::op::Op::is_backward)
            .unwrap();
        s.workers[1].remove(idx);
        match validate(&s) {
            Err(ValidationError::Coverage { detail, .. }) => {
                assert!(detail.contains("backward coverage"));
            }
            other => panic!("expected coverage error, got {other:?}"),
        }
    }

    #[test]
    fn premature_sync_detected() {
        let mut s = dapple(2, 2);
        // Insert a launch before the backwards on worker 0.
        s.workers[0].insert(0, crate::op::Op::allreduce_launch(StageId(0), ReplicaId(0)));
        s.workers[0].push(crate::op::Op::allreduce_wait(StageId(0), ReplicaId(0)));
        assert!(matches!(
            validate(&s),
            Err(ValidationError::PrematureSync { .. })
        ));
    }

    #[test]
    fn synchronous_schemes_have_zero_staleness() {
        for sched in [
            gpipe(4, 8),
            dapple(4, 8),
            gems(4, 8),
            chimera(&ChimeraConfig::new(4, 8)).unwrap(),
        ] {
            let rep = weight_analysis(
                &sched,
                UpdateRule::PerIteration {
                    micros_per_iter: 8,
                    delay: 0,
                },
            );
            assert_eq!(rep.max_staleness, 0, "{:?}", sched.scheme);
        }
    }

    /// PipeDream stashes up to D weight versions at the first stage and 1 at
    /// the last (Table 2: [Mθ, D·Mθ]) and is stale.
    #[test]
    fn pipedream_weight_stash_matches_table2() {
        let d = 4;
        let s = concat_iterations(&pipedream(d, 8), 3, false);
        let rep = weight_analysis(&s, UpdateRule::PerMicro);
        assert_eq!(rep.max_versions[0], d, "first stage stashes D versions");
        assert_eq!(
            rep.max_versions[(d - 1) as usize],
            1,
            "last stage stashes 1"
        );
        assert!(rep.max_staleness > 0, "PipeDream is asynchronous");
        // Monotone decrease along the pipeline.
        for w in 1..d as usize {
            assert!(rep.max_versions[w] <= rep.max_versions[w - 1]);
        }
    }

    /// PipeDream-2BW's gradient accumulation + 1-delay double buffering needs
    /// exactly 2 versions everywhere (Table 2: 2Mθ) but stays stale.
    #[test]
    fn pipedream_2bw_double_buffering() {
        let d = 4;
        let n = 8;
        let s = concat_iterations(&pipedream_2bw(d, n), 4, true);
        let rep = weight_analysis(
            &s,
            UpdateRule::PerIteration {
                micros_per_iter: n,
                delay: 1,
            },
        );
        for (w, &v) in rep.max_versions.iter().enumerate() {
            assert!(v <= 2, "worker {w} needs {v} versions");
        }
        assert!(rep.max_staleness > 0, "2BW uses 1-stale weights");
    }

    /// Chimera over several iterations remains staleness-free.
    #[test]
    fn chimera_multi_iteration_synchronous() {
        let s = chimera(&ChimeraConfig::new(4, 8)).unwrap();
        let many = concat_iterations(&s, 3, false);
        let rep = weight_analysis(
            &many,
            UpdateRule::PerIteration {
                micros_per_iter: 8,
                delay: 0,
            },
        );
        assert_eq!(rep.max_staleness, 0);
        // One version per stage replica; each worker holds two replicas.
        for &v in &rep.max_versions {
            assert_eq!(v, 2);
        }
    }
}
