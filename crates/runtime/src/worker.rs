//! One pipeline worker: a thread executing its schedule ops on real model
//! stages.
//!
//! Workers are generic over the interconnect: all point-to-point traffic
//! goes through a [`chimera_comm::Transport`] endpoint (crossbeam channels
//! in-process, TCP frames across processes) and gradient synchronization
//! through a [`chimera_comm::KeyedReduce`] member per held stage.
//!
//! Every blocking wait in a worker (p2p receive, allreduce completion) has
//! a deadline ([`TrainOptions::recv_timeout`]): instead of hanging on a dead
//! peer, a worker returns a [`WorkerError`] naming the worker, iteration,
//! and blocked op, and the supervisor in [`crate::runtime`] decides whether
//! to recover.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use chimera_comm::{KeyedReduce, MsgKey, Payload, Transport};
use chimera_core::op::{Chunk, Op, OpKind};
use chimera_core::placement::Placement;
use chimera_core::{StageId, WorkerId};
use chimera_nn::{LrSchedule, MicroStash, Optimizer, OptimizerKind, Stage, SyntheticData};
use chimera_tensor::{kernels, pool, Tensor};
use chimera_trace::{now_ns, Counter, Event, MetricsRegistry, SpanEvent, SpanKind, TraceSink};

use crate::error::WorkerError;
use crate::fault::{FaultSpec, RecoveryPolicy};
use crate::mem::{MemReport, MemTracker};

type StageKey = (u32, u32); // (replica, stage)

/// Training hyper-parameters shared by every worker.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Sequences per micro-batch (`B`).
    pub micro_batch: usize,
    /// Training iterations to run.
    pub iterations: u32,
    /// Learning rate (base of a constant schedule unless overridden).
    pub lr: f32,
    /// SGD momentum (ignored by [`OptimizerKind::Adam`]).
    pub momentum: f32,
    /// Data-stream seed.
    pub data_seed: u64,
    /// Update rule; `None` means momentum SGD from the fields above.
    pub optimizer: Option<OptimizerKind>,
    /// Learning-rate schedule; `None` means constant `lr`.
    pub lr_schedule: Option<LrSchedule>,
    /// Trace sink receiving wall-clock spans (forward/backward/p2p/allreduce)
    /// from every worker thread. `None` — the default — disables all
    /// instrumentation: no clock reads, no event construction.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Injected faults for this run; `None` trains healthy.
    pub fault: Option<FaultSpec>,
    /// Checkpoint cadence in iterations: the supervisor snapshots params +
    /// optimizer state every this many iterations and can replay at most
    /// one cadence worth of work after a failure. `None` checkpoints only
    /// the initial state (a failure replays the whole run).
    pub checkpoint_every: Option<u32>,
    /// Deadline for any single blocking wait (p2p receive, allreduce
    /// completion). On expiry the worker reports a descriptive error
    /// instead of hanging.
    pub recv_timeout: Duration,
    /// How many checkpoint-restart recoveries the supervisor may perform
    /// before giving up with [`crate::TrainError::WorkerLost`].
    pub max_recoveries: u32,
    /// What the supervisor does on a detected worker death.
    pub on_worker_loss: RecoveryPolicy,
    /// Intra-op kernel threads per matmul. `None` defers to the
    /// `CHIMERA_THREADS` environment variable (default 1). Results are
    /// bit-identical at any thread count — see `chimera_tensor::kernels`.
    pub threads: Option<usize>,
    /// Recycle tensor backing stores through `chimera_tensor::pool`
    /// (default on; purely an allocation optimization, no numeric effect).
    pub pool: bool,
    /// Pre-warm each worker thread's pool before the first iteration: one
    /// dry forward/backward cycle per held stage warms every transient size
    /// class, then the liveness plan (see [`crate::mem::plan`]) tops each
    /// class up by the number of concurrently-held buffers, so the cold
    /// first micro-batch allocates nothing (default on; requires `pool`).
    pub prewarm: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            micro_batch: 1,
            iterations: 1,
            lr: 0.05,
            momentum: 0.9,
            data_seed: 1,
            optimizer: None,
            lr_schedule: None,
            trace: None,
            fault: None,
            checkpoint_every: None,
            recv_timeout: Duration::from_secs(5),
            max_recoveries: 2,
            on_worker_loss: RecoveryPolicy::Restart,
            threads: None,
            pool: true,
            prewarm: true,
        }
    }
}

impl TrainOptions {
    /// The effective optimizer kind.
    pub fn optimizer_kind(&self) -> OptimizerKind {
        self.optimizer.unwrap_or(OptimizerKind::Sgd {
            momentum: self.momentum,
        })
    }

    /// The effective learning-rate schedule.
    pub fn schedule(&self) -> LrSchedule {
        self.lr_schedule.unwrap_or(LrSchedule::Constant(self.lr))
    }
}

/// Per-worker tracing state; only built when [`TrainOptions::trace`] holds a
/// sink, so a disabled trace costs one `Option` check per op.
struct Tracer {
    sink: Arc<dyn TraceSink>,
    /// Global track id: `group · D + local worker id`.
    track: u32,
    p2p_bytes: Arc<Counter>,
    p2p_wait_ns: Arc<Counter>,
    allreduce_launches: Arc<Counter>,
    /// Wall-clock compute nanoseconds per held stage.
    stage_compute_ns: HashMap<u32, Arc<Counter>>,
}

impl Tracer {
    #[allow(clippy::too_many_arguments)]
    fn span(
        &self,
        kind: SpanKind,
        name: String,
        start_ns: u64,
        end_ns: u64,
        stage: Option<u32>,
        replica: Option<u32>,
        micro: Option<u64>,
        bytes: Option<u64>,
    ) {
        self.sink.record(Event::Span(SpanEvent {
            kind,
            name,
            pid: 0,
            track: self.track,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            stage,
            replica,
            micro,
            bytes,
        }));
    }
}

/// What a worker thread returns on success.
pub struct WorkerResult {
    /// `(global_micro, loss)` for every micro-batch whose head this worker
    /// executed.
    pub losses: Vec<(u64, f32)>,
    /// Final stage replicas with their optimizer state,
    /// `(replica, stage, Stage, Optimizer)`.
    pub stages: Vec<(u32, u32, Stage, Optimizer)>,
    /// Tracked-memory high-water mark and first-iteration pool behavior.
    pub mem: MemReport,
}

/// The slice of the global training run one spawned worker executes. The
/// supervisor trains in segments of [`TrainOptions::checkpoint_every`]
/// iterations; after a failure it replays the current segment from the last
/// checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct SegmentSpec {
    /// Global (0-based) iteration the segment starts at.
    pub start_iter: u32,
    /// Iterations in this segment.
    pub iterations: u32,
    /// Global micro-batch id cursor at segment start (micros consumed by
    /// all committed segments — not derivable from `start_iter` once a run
    /// has degraded to fewer groups).
    pub micro_base: u64,
}

/// One worker's runtime state.
pub struct Worker {
    /// This worker's id within its pipeline group.
    pub id: WorkerId,
    d: u32,
    /// Data-parallel group this worker belongs to (`0..W`, §3.3).
    group: u32,
    /// Total number of replicated pipeline groups `W`.
    w_total: u32,
    n_per_iter: u32,
    ops: Vec<Op>,
    has_sync_ops: bool,
    placement: Placement,
    stages: HashMap<StageKey, Stage>,
    optimizers: HashMap<StageKey, Optimizer>,
    sync: HashMap<u32, Box<dyn KeyedReduce>>, // by stage
    /// This worker's interconnect endpoint; global rank `group · D + id`.
    ep: Arc<dyn Transport>,
    data: SyntheticData,
    opts: TrainOptions,
    seg: SegmentSpec,
    /// Global iteration currently executing (for fault matching and error
    /// diagnostics).
    cur_iter: u32,
    stashes: HashMap<(u32, u32, u64), MicroStash>,
    grads: HashMap<StageKey, Vec<(u64, Vec<f32>)>>,
    recomputing: Vec<StageKey>,
    losses: Vec<(u64, f32)>,
    /// Asynchronous schedules (PipeDream) update weights mid-stream; to keep
    /// forward/backward weight versions consistent, each in-flight
    /// micro-batch must run its backward against the parameter version its
    /// forward read (PipeDream's *weight stashing*).
    stash_weights: bool,
    /// Copy-on-update version store per held `(replica, stage)` — mirrors
    /// the static walk in `chimera_verify::liveness`.
    versions: HashMap<StageKey, VersionStore>,
    /// Liveness-derived pool pre-sizing plan: `(size class, extra spares)`.
    plan: Vec<(usize, usize)>,
    /// Element-exact accounting of held-across-op buffers.
    mem: MemTracker,
    /// Index of the op currently executing within one iteration's schedule.
    cur_op: usize,
    tracer: Option<Tracer>,
}

/// Copy-on-update weight versions of one `(replica, stage)`.
///
/// A forward merely records which version id it read; nothing is copied. The
/// update that would overwrite a still-referenced version materializes **one**
/// refcounted copy (not one per in-flight micro — PipeDream's Table-2 bound
/// of `D - s` resident versions at stage `s` is exactly what this attains in
/// steady state). The copy is freed when the last referencing micro's
/// backward completes.
#[derive(Default)]
struct VersionStore {
    /// Id of the live (in-`Stage`) parameter version.
    current: u64,
    /// In-flight micros whose forward read `current`.
    current_refs: u32,
    /// Global micro id → version id its forward read.
    by_micro: HashMap<u64, u64>,
    /// Materialized superseded versions: id → (params copy, refs).
    stashed: HashMap<u64, (Vec<f32>, u32)>,
}

impl Worker {
    /// Assemble a worker executing segment `seg`. Each `(replica, stage)`
    /// entry carries the stage parameters **and** the optimizer state it
    /// resumes from — fresh at iteration 0, restored from a checkpoint
    /// after a recovery.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: WorkerId,
        d: u32,
        group: u32,
        w_total: u32,
        n_per_iter: u32,
        ops: Vec<Op>,
        placement: Placement,
        stages: Vec<(u32, u32, Stage, Optimizer)>,
        sync: HashMap<u32, Box<dyn KeyedReduce>>,
        ep: Arc<dyn Transport>,
        data: SyntheticData,
        opts: TrainOptions,
        seg: SegmentSpec,
        plan: Vec<(usize, usize)>,
        flushes: bool,
    ) -> Self {
        let has_sync_ops = ops.iter().any(|o| o.kind == OpKind::AllReduceWait);
        let stash_weights = !flushes;
        let recomputing: Vec<StageKey> = {
            let mut v: Vec<StageKey> = ops
                .iter()
                .filter(|o| o.recomputes())
                .map(|o| (o.replica.0, o.stage.0))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut stage_map = HashMap::new();
        let mut optimizers = HashMap::new();
        for (r, s, stage, opt) in stages {
            debug_assert_eq!(opt.len(), stage.num_params());
            optimizers.insert((r, s), opt);
            stage_map.insert((r, s), stage);
        }
        let tracer = opts.trace.clone().map(|sink| {
            let reg = MetricsRegistry::global();
            let stage_compute_ns = stage_map
                .keys()
                .map(|&(_, s)| (s, reg.counter(&format!("runtime.stage.{s}.compute_ns"))))
                .collect();
            Tracer {
                sink,
                track: group * d + id.0,
                p2p_bytes: reg.counter("runtime.p2p.bytes"),
                p2p_wait_ns: reg.counter("runtime.p2p.wait_ns"),
                allreduce_launches: reg.counter("runtime.allreduce.launches"),
                stage_compute_ns,
            }
        });
        Worker {
            id,
            d,
            group,
            w_total,
            n_per_iter,
            ops,
            has_sync_ops,
            placement,
            stages: stage_map,
            optimizers,
            sync,
            ep,
            data,
            opts,
            seg,
            cur_iter: seg.start_iter,
            stashes: HashMap::new(),
            grads: HashMap::new(),
            recomputing,
            losses: Vec::new(),
            stash_weights,
            versions: HashMap::new(),
            plan,
            mem: MemTracker::default(),
            cur_op: 0,
            tracer,
        }
    }

    /// Run the segment's iterations; consumes the worker.
    ///
    /// Global micro-batch ids interleave data-parallel groups group-major:
    /// local iteration `i` consumes micros starting at
    /// `micro_base + i·N·W + group·N` — the same ordering the sequential
    /// reference uses, so keyed gradient reduction stays bit-exact across
    /// `W`.
    pub fn run(mut self) -> Result<WorkerResult, WorkerError> {
        let ops = std::mem::take(&mut self.ops);
        let prewarmed = self.opts.pool && self.opts.prewarm && pool::enabled();
        if prewarmed {
            self.prewarm();
        }
        // Pool counters are thread-local, so this worker's first-iteration
        // hit/miss behavior is measurable without races against siblings.
        let miss_base = pool::local_stats().misses;
        let mut first_micro_misses = None;
        let mut first_iter_misses = None;
        for iter in 0..self.seg.iterations {
            self.cur_iter = self.seg.start_iter + iter;
            self.maybe_kill()?;
            let offset = self.seg.micro_base
                + iter as u64 * self.n_per_iter as u64 * self.w_total as u64
                + self.group as u64 * self.n_per_iter as u64;
            for (i, op) in ops.iter().enumerate() {
                self.cur_op = i;
                self.exec(op, offset)?;
                if iter == 0 && first_micro_misses.is_none() && op.is_compute() {
                    first_micro_misses = Some(pool::local_stats().misses - miss_base);
                }
            }
            if !self.has_sync_ops {
                // Implicit post-hoc synchronization: launch everything, then
                // wait — partner workers may hold the same stages in a
                // different order, so blocking per-stage reduces could
                // deadlock.
                self.cur_op = ops.len();
                let t0 = self.tracer.as_ref().map(|_| now_ns());
                let mut held: Vec<StageKey> = self.stages.keys().copied().collect();
                held.sort_unstable();
                for &(r, s) in &held {
                    let contribution = self.grads.remove(&(r, s)).unwrap_or_default();
                    let drained: usize = contribution.iter().map(|(_, g)| g.len()).sum();
                    self.sync[&s].deposit(contribution);
                    self.mem.sub(drained);
                }
                for &(r, s) in &held {
                    let summed = self.fetch_reduced(s)?;
                    self.apply_update(r, s, &summed);
                    pool::put(summed);
                }
                if let (Some(tr), Some(start)) = (&self.tracer, t0) {
                    tr.allreduce_launches.add(held.len() as u64);
                    tr.span(
                        SpanKind::AllReduce,
                        format!("posthoc-sync i{}", self.cur_iter),
                        start,
                        now_ns(),
                        None,
                        None,
                        None,
                        None,
                    );
                }
            }
            if iter == 0 {
                first_iter_misses = Some(pool::local_stats().misses - miss_base);
            }
        }
        let mut stages: Vec<(u32, u32, Stage, Optimizer)> = Vec::new();
        for ((r, s), stage) in self.stages {
            let opt = self.optimizers.remove(&(r, s)).expect("optimizer held");
            stages.push((r, s, stage, opt));
        }
        stages.sort_by_key(|&(r, s, ..)| (r, s));
        Ok(WorkerResult {
            losses: self.losses,
            stages,
            mem: MemReport {
                high_water_elems: self.mem.high_water(),
                high_at_op: self.mem.high_at(),
                first_micro_misses: first_micro_misses.unwrap_or(0),
                first_iter_misses: first_iter_misses.unwrap_or(0),
                prewarmed,
            },
        })
    }

    /// Pre-warm this thread's pool: one dry forward/backward cycle per held
    /// stage covers every transient size class a compute op touches (plus
    /// two parameter-class spares for the optimizer and allreduce
    /// round-trips); the liveness plan then tops each class up by the
    /// maximum number of concurrently-held buffers (stashes, weight
    /// versions, pending gradients). Shapes — not values — determine
    /// allocation, so zeroed probe inputs warm exactly the classes training
    /// will request.
    fn prewarm(&mut self) {
        let mut held: Vec<StageKey> = self.stages.keys().copied().collect();
        held.sort_unstable();
        for &(r, s) in &held {
            let stage = &self.stages[&(r, s)];
            let last = s + 1 == self.d;
            let cfg = stage.config();
            let rows = self.opts.micro_batch * cfg.seq;
            let tokens = vec![0u32; rows];
            let targets = vec![0u32; rows];
            let x = (s > 0).then(|| Tensor::zeros(rows, cfg.hidden));
            let (out, stash) = stage.forward(
                x,
                (s == 0).then_some(tokens.as_slice()),
                last.then_some(targets.as_slice()),
            );
            // The boundary activation doubles as a shape-correct dy.
            let (dx, grad) = stage.backward(&stash, out.activation, 1.0);
            pool::put(grad);
            drop(dx);
            drop(stash);
            pool::put(stage.params());
            pool::put(stage.params());
        }
        for &(class, extra) in &self.plan {
            pool::prewarm(class, pool::spare_count(class) + extra);
        }
        // The packed GEMM engine draws per-grid-cell panel scratch from
        // this thread's pool. The dry cycle warms those classes only when a
        // held stage is big enough to take the packed path, so provision
        // them explicitly — one a-panel and one b-panel buffer per grid
        // cell this thread could run — keeping the first *large* product
        // allocation-free too.
        for class in kernels::pack_pool_classes() {
            pool::prewarm(class, kernels::hw_parallelism());
        }
    }

    /// Fire the injected kill fault if it targets this worker at the
    /// current iteration.
    fn maybe_kill(&self) -> Result<(), WorkerError> {
        let Some(kill) = self.opts.fault.as_ref().and_then(|f| f.kill) else {
            return Ok(());
        };
        if kill.group != self.group || kill.worker != self.id.0 || kill.iteration != self.cur_iter {
            return Ok(());
        }
        let at = now_ns();
        MetricsRegistry::global()
            .counter("runtime.fault.kills")
            .inc();
        if let Some(tr) = &self.tracer {
            tr.span(
                SpanKind::Fault,
                format!("kill g{}-w{} i{}", self.group, self.id.0, self.cur_iter),
                at,
                at,
                None,
                None,
                None,
                None,
            );
        }
        Err(WorkerError::Killed {
            group: self.group,
            worker: self.id.0,
            iteration: self.cur_iter,
            at_ns: at,
        })
    }

    /// Wait (with deadline) for this worker's next reduced gradient of
    /// stage `s`.
    fn fetch_reduced(&self, s: u32) -> Result<Vec<f32>, WorkerError> {
        self.sync[&s]
            .fetch_deadline(self.opts.recv_timeout)
            .ok_or(WorkerError::AllReduceTimeout {
                group: self.group,
                worker: self.id.0,
                iteration: self.cur_iter,
                stage: s,
                waited: self.opts.recv_timeout,
            })
    }

    fn exec(&mut self, op: &Op, offset: u64) -> Result<(), WorkerError> {
        if self.tracer.is_none() {
            return self.exec_op(op, offset);
        }
        let start = now_ns();
        self.exec_op(op, offset)?;
        let end = now_ns();
        let tr = self.tracer.as_ref().expect("tracer checked above");
        let kind = match op.kind {
            OpKind::Forward => SpanKind::Forward,
            OpKind::Backward { recompute: false } => SpanKind::Backward,
            OpKind::Backward { recompute: true } => SpanKind::Recompute,
            OpKind::AllReduceLaunch => SpanKind::AllReduceLaunch,
            OpKind::AllReduceWait => SpanKind::AllReduce,
        };
        if op.is_compute() {
            if let Some(c) = tr.stage_compute_ns.get(&op.stage.0) {
                c.add(end.saturating_sub(start));
            }
        }
        if op.kind == OpKind::AllReduceLaunch {
            tr.allreduce_launches.inc();
        }
        tr.span(
            kind,
            op.to_string(),
            start,
            end,
            Some(op.stage.0),
            Some(op.replica.0),
            op.is_compute().then(|| op.micro.0 as u64 + offset),
            None,
        );
        Ok(())
    }

    fn exec_op(&mut self, op: &Op, offset: u64) -> Result<(), WorkerError> {
        assert_eq!(op.chunk, Chunk::Full, "runtime supports full-micro chunks");
        match op.kind {
            OpKind::Forward => self.forward(op, offset),
            OpKind::Backward { .. } => self.backward(op, offset),
            OpKind::AllReduceLaunch => {
                let contribution = self
                    .grads
                    .remove(&(op.replica.0, op.stage.0))
                    .unwrap_or_default();
                let drained: usize = contribution.iter().map(|(_, g)| g.len()).sum();
                self.sync[&op.stage.0].deposit(contribution);
                self.mem.sub(drained);
                Ok(())
            }
            OpKind::AllReduceWait => {
                self.note_update(op.replica.0, op.stage.0);
                let summed = self.fetch_reduced(op.stage.0)?;
                self.apply_update(op.replica.0, op.stage.0, &summed);
                pool::put(summed);
                Ok(())
            }
        }
    }

    fn forward(&mut self, op: &Op, offset: u64) -> Result<(), WorkerError> {
        let (r, s) = (op.replica.0, op.stage.0);
        let g = op.micro.0 as u64 + offset;
        let last = s + 1 == self.d;
        let (tokens, targets) = if s == 0 || last {
            self.data.batch(g, self.opts.micro_batch)
        } else {
            (Vec::new(), Vec::new())
        };
        let x = if s == 0 {
            None
        } else {
            Some(self.recv(false, r, s - 1, g)?)
        };
        let stage = &self.stages[&(r, s)];
        let (out, mut stash) = stage.forward(
            x,
            (s == 0).then_some(tokens.as_slice()),
            last.then_some(targets.as_slice()),
        );
        if self.recomputing.contains(&(r, s)) {
            stash.drop_to_boundary();
        }
        let stashed_elems = stash.elements();
        self.stashes.insert((r, s, g), stash);
        self.mem.add(stashed_elems, self.cur_op);
        if self.stash_weights {
            // Copy-on-update: record which version this forward read —
            // nothing is copied unless an update supersedes it while the
            // micro is still in flight (see `note_update`).
            let st = self.versions.entry((r, s)).or_default();
            st.by_micro.insert(g, st.current);
            st.current_refs += 1;
        }
        if let Some(act) = out.activation {
            let to = self.placement.worker(op.replica, StageId(s + 1));
            self.send(to, r, s, g, false, act)?;
        }
        if let Some(loss) = out.loss {
            self.losses.push((g, loss));
        }
        Ok(())
    }

    fn backward(&mut self, op: &Op, offset: u64) -> Result<(), WorkerError> {
        let (r, s) = (op.replica.0, op.stage.0);
        let g = op.micro.0 as u64 + offset;
        let last = s + 1 == self.d;
        let dy = if last {
            None
        } else {
            Some(self.recv(true, r, s + 1, g)?)
        };
        let mut stash = self
            .stashes
            .remove(&(r, s, g))
            .expect("backward without stashed forward");
        // PipeDream weight stashing (copy-on-update): the backward must use
        // the parameter version this micro's forward read. Micros on the
        // still-current version run in place — the values are identical, no
        // swap needed; micros on a superseded version swap in the shared
        // materialized copy and swap back after.
        let mut restore: Option<(u64, Vec<f32>)> = None;
        if self.stash_weights {
            let st = self.versions.entry((r, s)).or_default();
            if let Some(v) = st.by_micro.remove(&g) {
                if v == st.current {
                    st.current_refs = st.current_refs.saturating_sub(1);
                } else {
                    let stage = self.stages.get_mut(&(r, s)).expect("stage held");
                    let saved = stage.params();
                    let (version, _) = st.stashed.get(&v).expect("superseded version materialized");
                    stage.set_params(version);
                    restore = Some((v, saved));
                }
            }
        }
        let stage = &self.stages[&(r, s)];
        if !stash.is_full() {
            let boundary = stash.elements();
            let (_, targets) = self.data.batch(g, self.opts.micro_batch);
            stage.recompute(&mut stash, last.then_some(targets.as_slice()));
            self.mem.add(stash.elements() - boundary, self.cur_op);
        }
        let scale = 1.0 / (self.n_per_iter * self.w_total) as f32;
        let (dx, grad) = stage.backward(&stash, dy, scale);
        self.mem.add(grad.len(), self.cur_op);
        if let Some((v, saved)) = restore {
            self.stages
                .get_mut(&(r, s))
                .expect("stage held")
                .set_params(&saved);
            pool::put(saved);
            let st = self.versions.get_mut(&(r, s)).expect("version store");
            let (_, refs) = st.stashed.get_mut(&v).expect("version present");
            *refs -= 1;
            if *refs == 0 {
                let (buf, _) = st.stashed.remove(&v).expect("version present");
                let freed = buf.len();
                pool::put(buf);
                self.mem.sub(freed);
            }
        }
        let freed_stash = stash.elements();
        self.grads.entry((r, s)).or_default().push((g, grad));
        self.mem.sub(freed_stash);
        if let Some(dx) = dx {
            let to = self.placement.worker(op.replica, StageId(s - 1));
            self.send(to, r, s, g, true, dx)?;
        }
        Ok(())
    }

    fn apply_update(&mut self, r: u32, s: u32, summed: &[f32]) {
        if summed.is_empty() {
            return;
        }
        let stage = self.stages.get_mut(&(r, s)).expect("stage held");
        let opt = self.optimizers.get_mut(&(r, s)).expect("optimizer held");
        let lr = self.opts.schedule().at(opt.steps());
        let mut params = stage.params();
        opt.step(&mut params, summed, lr);
        stage.set_params(&params);
        pool::put(params);
    }

    /// Record that `(r, s)`'s weights are about to change: if any in-flight
    /// micro-batch still references the current version, materialize one
    /// refcounted copy of it (copy-on-update), then open a fresh version.
    ///
    /// Mirrors the static liveness walk's `AllReduceWait` handling exactly,
    /// so tracked memory matches the analyzer's byte for byte.
    fn note_update(&mut self, r: u32, s: u32) {
        if !self.stash_weights {
            return;
        }
        let st = self.versions.entry((r, s)).or_default();
        if st.current_refs > 0 {
            let params = self.stages.get(&(r, s)).expect("stage held").params();
            let n = params.len();
            st.stashed.insert(st.current, (params, st.current_refs));
            self.mem.add(n, self.cur_op);
        }
        st.current += 1;
        st.current_refs = 0;
    }

    /// Ship one pipeline boundary tensor to worker `to` in this group.
    ///
    /// p2p stays within the pipeline group (§3.3): transport ranks are
    /// global worker ids `group · D + local id`. Fault injection (message
    /// drop/delay) lives inside the transport, so it behaves identically
    /// across backends.
    fn send(
        &mut self,
        to: WorkerId,
        replica: u32,
        stage: u32,
        micro: u64,
        grad: bool,
        tensor: Tensor,
    ) -> Result<(), WorkerError> {
        let global = self.group * self.d + to.0;
        let key = if grad {
            MsgKey::Grad {
                replica,
                stage,
                micro,
            }
        } else {
            MsgKey::Act {
                replica,
                stage,
                micro,
            }
        };
        self.ep
            .send(global, key, Payload::Tensor(tensor))
            .map_err(|_| WorkerError::PeerGone {
                group: self.group,
                worker: self.id.0,
                iteration: self.cur_iter,
                to: to.0,
            })
    }

    fn recv(
        &mut self,
        grad: bool,
        replica: u32,
        stage: u32,
        micro: u64,
    ) -> Result<Tensor, WorkerError> {
        let key = if grad {
            MsgKey::Grad {
                replica,
                stage,
                micro,
            }
        } else {
            MsgKey::Act {
                replica,
                stage,
                micro,
            }
        };
        let start = self.tracer.as_ref().map(|_| now_ns());
        let tensor = match self.ep.recv_deadline(key, self.opts.recv_timeout) {
            Ok(payload) => payload.into_tensor(),
            Err(_) => {
                let dir = if grad { "grad" } else { "act" };
                return Err(WorkerError::RecvTimeout {
                    group: self.group,
                    worker: self.id.0,
                    iteration: self.cur_iter,
                    op: format!("recv {dir} m{micro}@s{stage}/r{replica}"),
                    waited: self.opts.recv_timeout,
                });
            }
        };
        if let (Some(tr), Some(start)) = (&self.tracer, start) {
            let end = now_ns();
            // Each boundary tensor is received exactly once, so counting on
            // the receive side totals all p2p traffic.
            tr.p2p_bytes.add(tensor.len() as u64 * 4);
            tr.p2p_wait_ns.add(end.saturating_sub(start));
            let dir = if grad { "grad" } else { "act" };
            tr.span(
                SpanKind::P2p,
                format!("recv {dir} m{micro}@s{stage}"),
                start,
                end,
                Some(stage),
                Some(replica),
                Some(micro),
                Some(tensor.len() as u64 * 4),
            );
        }
        Ok(tensor)
    }
}
