//! Ablation: the paper assumes Rabenseifner's allreduce because it is
//! bandwidth-optimal for large gradients (§3.4). How much does the
//! collective algorithm matter for end-to-end Chimera throughput?

use chimera_bench::{print_table, save_json};
use chimera_core::chimera::{chimera, ChimeraConfig};
use chimera_core::schedule::SyncStrategy;
use chimera_core::sync::place_sync;
use chimera_core::unit_time::UnitCosts;
use chimera_perf::{ClusterSpec, ModelSpec, TrainConfig};
use chimera_sim::{simulate, AllReduceAlgo};

fn main() {
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    let d = 4u32;
    let b = 8u32;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (p, b_hat) in [(16u32, 256u64), (64, 1024), (256, 4096)] {
        let w = p / d;
        let n = (b_hat / (w as u64 * b as u64)) as u32;
        let sched = place_sync(
            chimera(&ChimeraConfig::new(d, n)).unwrap(),
            SyncStrategy::EagerOpt,
            UnitCosts::practical(),
        );
        let mut per_algo = Vec::new();
        for algo in [
            AllReduceAlgo::Rabenseifner,
            AllReduceAlgo::Ring,
            AllReduceAlgo::FlatTree,
        ] {
            let mut cost = TrainConfig {
                model,
                cluster,
                d,
                w,
                b,
                stage_replicas: 2,
            }
            .cost_model();
            cost.allreduce_algo = algo;
            let rep = simulate(&sched, &cost).expect("simulates");
            per_algo.push(rep.throughput(b_hat));
        }
        rows.push(vec![
            p.to_string(),
            format!("{}", 2 * w),
            format!("{:.1}", per_algo[0]),
            format!("{:.1}", per_algo[1]),
            format!("{:.1}", per_algo[2]),
            format!("{:.3}x", per_algo[0] / per_algo[2]),
        ]);
        json.push(serde_json::json!({
            "p": p,
            "participants": 2 * w,
            "rabenseifner": per_algo[0],
            "ring": per_algo[1],
            "flat_tree": per_algo[2],
        }));
    }
    print_table(
        "Ablation: allreduce algorithm, Chimera Bert-48, D=4, B=8 (samples/s)",
        &[
            "P",
            "ranks",
            "Rabenseifner",
            "Ring",
            "FlatTree",
            "raben/tree",
        ],
        &rows,
    );
    println!(
        "\nRabenseifner's bandwidth term saturates at 2βL while the flat tree\n\
         pays βL·log2(r) — the gap widens with the allreduce group size, which\n\
         is why the paper's model assumes it (§3.4)."
    );
    save_json("ablation_allreduce", serde_json::json!(json));
}
