//! A minimal row-major `f32` matrix type.
//!
//! The transformer layers in `chimera-nn` only need 2-D tensors (token/batch
//! dimensions are flattened into rows), so `Tensor` is deliberately a dense
//! `rows × cols` matrix with the handful of BLAS-like kernels the forward
//! and backward passes require. The multiply variants dispatch to the tiled,
//! multi-threaded kernels in [`crate::kernels`]; backing stores are recycled
//! through [`crate::pool`] (a `Tensor` returns its buffer on drop and takes
//! a pooled one on creation).

use crate::kernels;
use crate::pool;
use crate::rng::Rng;

/// Dense row-major `f32` matrix.
#[derive(Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = pool::take_spare(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clear();
        self.data.extend_from_slice(&source.data);
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Recycle the backing store; the pool drops buffers too small to be
        // worth keeping.
        pool::put(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: pool::take_zeroed(rows * cols),
        }
    }

    /// Build from a row-major vector (must have `rows * cols` elements).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut data = pool::take_spare(rows * cols);
        data.extend((0..rows * cols).map(|_| rng.uniform_in(-bound, bound)));
        Tensor { rows, cols, data }
    }

    /// Normal(0, std) initialization.
    pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let mut data = pool::take_spare(rows * cols);
        data.extend((0..rows * cols).map(|_| rng.normal() * std));
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, handing back its backing store (bypasses the
    /// pool — the caller owns the buffer and should [`pool::put`] it when
    /// done if it wants recycling).
    pub fn into_data(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` — `[m,k] x [k,n] -> [m,n]` via the tiled,
    /// multi-threaded kernel ([`kernels::matmul_into`]).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        kernels::matmul_into(&self.data, &other.data, &mut out.data, m, k, n);
        out
    }

    /// `self @ other` with a per-element zero skip — the sparse-aware entry
    /// point for embedding-style inputs (one-hot / mostly-zero rows), where
    /// skipping whole AXPY rows beats the dense kernel by the sparsity
    /// factor. On dense data the data-dependent branch defeats
    /// vectorization; use [`Tensor::matmul`]. (`fig_kernels` benches both
    /// on 95%-zero input to keep this trade-off measured.)
    pub fn matmul_zero_skip(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` — `[k,m]ᵀ x [k,n] -> [m,n]` without materializing the
    /// transpose (the `dW = Xᵀ dY` pattern of linear-layer backward).
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        kernels::t_matmul_into(&self.data, &other.data, &mut out.data, k, m, n);
        out
    }

    /// `out += selfᵀ @ other`, accumulating straight into a caller-owned
    /// slice (e.g. a gradient buffer) — skips the intermediate tensor of
    /// [`Tensor::t_matmul`] entirely.
    pub fn t_matmul_acc(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        assert_eq!(out.len(), m * n, "t_matmul_acc output size mismatch");
        kernels::t_matmul_into(&self.data, &other.data, out, k, m, n);
    }

    /// `self @ otherᵀ` — `[m,k] x [n,k]ᵀ -> [m,n]` (the `dX = dY Wᵀ`
    /// pattern).
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        kernels::matmul_t_into(&self.data, &other.data, &mut out.data, m, k, n);
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place add.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise add producing a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place `self += scale * other` (AXPY).
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row-vector bias to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Column sums (`[1, cols]` as a plain vector) — the bias gradient.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.sum_rows_into(&mut out);
        out
    }

    /// `out += ` column sums, accumulating into a caller-owned slice.
    pub fn sum_rows_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "sum_rows_into size mismatch");
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Map every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = pool::take_spare(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut data = pool::take_spare(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| a * b));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copy a contiguous block of rows.
    pub fn rows_slice(&self, start: usize, count: usize) -> Tensor {
        assert!(start + count <= self.rows);
        let mut data = pool::take_spare(count * self.cols);
        data.extend_from_slice(&self.data[start * self.cols..(start + count) * self.cols]);
        Tensor {
            rows: count,
            cols: self.cols,
            data,
        }
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Dot product of two equal-length slices.
///
/// Split over 8 independent fused-multiply-add accumulator lanes with a
/// **fixed** combine order: lanes 0..8 ascending, then a scalar `mul_add`
/// tail. `f32::mul_add` is exactly rounded, and hardware FMA computes the
/// identical bits, so the SIMD `dot_tile` microkernel, this scalar loop,
/// and the soft-float fallback all produce the same sum — every caller
/// (tiled kernels, naive reference, any thread, any CPU) is bit-identical
/// for the same inputs.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let av = &a[c * LANES..(c + 1) * LANES];
        let bv = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] = av[l].mul_add(bv[l], acc[l]);
        }
    }
    let mut sum = 0.0;
    for &lane in &acc {
        sum += lane;
    }
    for i in chunks * LANES..a.len() {
        sum = a[i].mul_add(b[i], sum);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_values() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmul_variants_agree() {
        let mut rng = Rng::new(5);
        let a = Tensor::normal(4, 6, 1.0, &mut rng);
        let b = Tensor::normal(4, 3, 1.0, &mut rng);
        // aᵀ b via t_matmul == transpose().matmul().
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
        let c = Tensor::normal(5, 6, 1.0, &mut rng);
        // a cᵀ via matmul_t == matmul(transpose).
        let direct = a.matmul_t(&c);
        let explicit = a.matmul(&c.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn zero_skip_matches_dense_on_sparse_input() {
        let mut rng = Rng::new(17);
        let mut a = Tensor::normal(6, 8, 1.0, &mut rng);
        for i in 0..a.len() {
            if i % 3 != 0 {
                a.data_mut()[i] = 0.0;
            }
        }
        let b = Tensor::normal(8, 5, 1.0, &mut rng);
        let dense = a.matmul(&b);
        let sparse = a.matmul_zero_skip(&b);
        assert!(dense.max_abs_diff(&sparse) < 1e-5);
    }

    #[test]
    fn acc_variants_match_allocating_ones() {
        let mut rng = Rng::new(23);
        let x = Tensor::normal(7, 4, 1.0, &mut rng);
        let dy = Tensor::normal(7, 5, 1.0, &mut rng);
        let mut acc = vec![0.0f32; 4 * 5];
        x.t_matmul_acc(&dy, &mut acc);
        assert_eq!(acc, x.t_matmul(&dy).data());
        let mut sums = vec![0.0f32; 5];
        dy.sum_rows_into(&mut sums);
        assert_eq!(sums, dy.sum_rows());
    }

    #[test]
    fn clone_preserves_contents() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = a.clone();
        assert_eq!(a, b);
        let mut c = Tensor::zeros(1, 1);
        c.clone_from(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn into_data_hands_back_buffer() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.into_data(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bias_and_sums() {
        let mut a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(a.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows(), vec![24.0, 46.0]);
    }

    #[test]
    fn axpy_scale_map_hadamard() {
        let mut a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
        let m = a.map(|v| v * 2.0);
        assert_eq!(m.data(), &[3.0, 4.0, 5.0]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), a.data());
    }

    #[test]
    fn rows_slice_copies_block() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.rows_slice(1, 2);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = Rng::new(11);
        let w = Tensor::xavier(16, 64, &mut rng);
        let bound = (6.0 / 80.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(w.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn dot_matches_plain_sum_on_small_inputs() {
        // Below one lane-chunk the fast path reduces to the scalar loop.
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
