//! Work-conserving schedule compaction.
//!
//! Chimera scales past `N = D` micro-batches by concatenating basic
//! scheduling units (§3.5). A real runtime lets the next unit's forwards
//! occupy the previous unit's draining bubbles: each worker keeps one cursor
//! per directional pipeline and, whenever it is free, executes the
//! highest-priority *ready* op among its cursors, subject to an in-flight
//! activation cap. This module performs that greedy execution once, under
//! abstract costs, and freezes the resulting per-worker op order into the
//! schedule.

use crate::dep::DepTracker;
use crate::ids::WorkerId;
use crate::op::{Chunk, Op};
use crate::placement::Placement;
use crate::unit_time::{CostProvider, UnitCosts};

/// One ordered op stream (e.g. all ops of one replica on one worker, across
/// all concatenated basic units). `priority` breaks ties between streams when
/// several heads could start at the same tick — lower runs first.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Ops in their mandatory relative order.
    pub ops: Vec<Op>,
    /// Tie-break priority per op (same length as `ops`).
    pub priority: Vec<u64>,
}

/// Failure during compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CompactError {}

/// Greedily execute the per-worker streams and return the flattened
/// per-worker op order.
///
/// * `micro_window` bounds run-ahead: a forward for micro-batch `m` may only
///   start while `m < oldest_unretired_micro + window` (a micro retires when
///   its stage-0 backward completes). This caps each worker's activation
///   stash at `window` micro-batches — `D` for Chimera (Table 2), `2D` under
///   forward doubling — and, unlike a raw per-worker stash cap, cannot
///   deadlock: the oldest unretired micro-batch is always admissible
///   everywhere, so its chain can always progress.
pub fn compact(
    d: u32,
    placement: &Placement,
    streams_per_worker: Vec<Vec<Stream>>,
    costs: UnitCosts,
    micro_window: Option<u32>,
) -> Result<Vec<Vec<Op>>, CompactError> {
    let nw = streams_per_worker.len();
    for streams in &streams_per_worker {
        for s in streams {
            assert_eq!(s.ops.len(), s.priority.len(), "priority per op required");
        }
    }
    let all_ops = streams_per_worker
        .iter()
        .flat_map(|ws| ws.iter().flat_map(|s| s.ops.iter()));
    let mut tracker = DepTracker::new(d, placement, all_ops);

    // Retirement tracking: per micro, how many stage-0 backward half-units
    // remain (2 = one full backward or two halves).
    let mut remaining: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    for ws in &streams_per_worker {
        for stream in ws {
            for op in &stream.ops {
                if op.is_backward() && op.stage.0 == 0 {
                    let units = match op.chunk {
                        Chunk::Half(_) => 1,
                        _ => 2,
                    };
                    for m in op.covered_micros() {
                        *remaining.entry(m.0 as u64).or_insert(0) += units;
                    }
                }
            }
        }
    }
    let mut oldest_unretired: u64 = remaining.keys().next().copied().unwrap_or(0);

    let total: usize = streams_per_worker
        .iter()
        .map(|ws| ws.iter().map(|s| s.ops.len()).sum::<usize>())
        .sum();
    let mut cursors: Vec<Vec<usize>> = streams_per_worker
        .iter()
        .map(|ws| vec![0usize; ws.len()])
        .collect();
    let mut free = vec![0u64; nw];
    let mut out: Vec<Vec<Op>> = vec![Vec::new(); nw];
    let mut done = 0usize;

    while done < total {
        // Find the (worker, stream) whose head op can start earliest.
        let mut best: Option<(u64, u64, usize, usize)> = None; // (start, prio, w, k)
        for (w, streams) in streams_per_worker.iter().enumerate() {
            for (k, stream) in streams.iter().enumerate() {
                let c = cursors[w][k];
                if c >= stream.ops.len() {
                    continue;
                }
                let op = &stream.ops[c];
                let Some(t) = tracker.ready_time(&costs, WorkerId(w as u32), op) else {
                    continue;
                };
                if let (Some(window), true) = (micro_window, op.is_forward()) {
                    let newest = op.covered_micros().map(|m| m.0 as u64).max().unwrap_or(0);
                    if newest >= oldest_unretired + window as u64 {
                        continue;
                    }
                }
                let start = free[w].max(t);
                let key = (start, stream.priority[c], w, k);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let Some((start, _, w, k)) = best else {
            return Err(CompactError {
                message: format!(
                    "compaction deadlock after {done}/{total} ops; \
                     micro window {micro_window:?} too small or streams inconsistent"
                ),
            });
        };
        let op = streams_per_worker[w][k].ops[cursors[w][k]];
        let finish = start + costs.op_cost(&op);
        tracker.record(&costs, WorkerId(w as u32), &op, finish);
        if op.is_backward() && op.stage.0 == 0 {
            let units = match op.chunk {
                Chunk::Half(_) => 1,
                _ => 2,
            };
            for m in op.covered_micros() {
                if let Some(r) = remaining.get_mut(&(m.0 as u64)) {
                    *r = r.saturating_sub(units);
                    if *r == 0 {
                        remaining.remove(&(m.0 as u64));
                    }
                }
            }
            oldest_unretired = remaining.keys().next().copied().unwrap_or(u64::MAX);
        }
        free[w] = finish;
        out[w].push(op);
        cursors[w][k] += 1;
        done += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MicroId, ReplicaId, StageId};

    /// D=2 linear pipeline, two units of 2 micros each, single stream per
    /// worker: compaction preserves a valid order and executes everything.
    #[test]
    fn single_stream_roundtrip() {
        let placement = Placement::linear(2);
        let mut w0 = Vec::new();
        let mut w1 = Vec::new();
        for m in 0..4u32 {
            w0.push(Op::forward(MicroId(m), StageId(0), ReplicaId(0)));
        }
        for m in 0..4u32 {
            w0.push(Op::backward(MicroId(m), StageId(0), ReplicaId(0)));
        }
        for m in 0..4u32 {
            w1.push(Op::forward(MicroId(m), StageId(1), ReplicaId(0)));
            w1.push(Op::backward(MicroId(m), StageId(1), ReplicaId(0)));
        }
        let streams = vec![
            vec![Stream {
                priority: (0..w0.len() as u64).collect(),
                ops: w0,
            }],
            vec![Stream {
                priority: (0..w1.len() as u64).collect(),
                ops: w1,
            }],
        ];
        let out = compact(2, &placement, streams, UnitCosts::equal(), None).unwrap();
        assert_eq!(out[0].len(), 8);
        assert_eq!(out[1].len(), 8);
    }

    /// A micro window of 1 forces worker 0 to interleave F/B even though
    /// its forward stream is always ready.
    #[test]
    fn micro_window_limits_run_ahead() {
        let placement = Placement::linear(2);
        let mut w0f = Vec::new();
        let mut w0b = Vec::new();
        for m in 0..3u32 {
            w0f.push(Op::forward(MicroId(m), StageId(0), ReplicaId(0)));
            w0b.push(Op::backward(MicroId(m), StageId(0), ReplicaId(0)));
        }
        let mut w1 = Vec::new();
        for m in 0..3u32 {
            w1.push(Op::forward(MicroId(m), StageId(1), ReplicaId(0)));
            w1.push(Op::backward(MicroId(m), StageId(1), ReplicaId(0)));
        }
        let streams = vec![
            vec![
                Stream {
                    priority: vec![0, 2, 4],
                    ops: w0f,
                },
                Stream {
                    priority: vec![1, 3, 5],
                    ops: w0b,
                },
            ],
            vec![Stream {
                priority: (0..6).collect(),
                ops: w1,
            }],
        ];
        let out = compact(2, &placement, streams, UnitCosts::equal(), Some(1)).unwrap();
        // With cap 1, worker 0 must alternate F, B, F, B, ...
        let kinds: Vec<bool> = out[0].iter().map(Op::is_forward).collect();
        assert_eq!(kinds, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn impossible_window_reports_deadlock() {
        let placement = Placement::linear(1);
        let ops = vec![
            Op::forward(MicroId(0), StageId(0), ReplicaId(0)),
            Op::backward(MicroId(0), StageId(0), ReplicaId(0)),
        ];
        let streams = vec![vec![Stream {
            priority: vec![0, 1],
            ops,
        }]];
        let err = compact(1, &placement, streams, UnitCosts::equal(), Some(0)).unwrap_err();
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn priority_breaks_ties_deterministically() {
        // Two independent forward streams on one worker; priorities decide.
        let placement = Placement::new(1, vec![vec![WorkerId(0)], vec![WorkerId(0)]]);
        let a = Stream {
            ops: vec![Op::forward(MicroId(0), StageId(0), ReplicaId(0))],
            priority: vec![5],
        };
        let b = Stream {
            ops: vec![Op::forward(MicroId(1), StageId(0), ReplicaId(1))],
            priority: vec![1],
        };
        let out = compact(1, &placement, vec![vec![a, b]], UnitCosts::equal(), None).unwrap();
        assert_eq!(out[0][0].micro, MicroId(1));
        assert_eq!(out[0][1].micro, MicroId(0));
    }
}
