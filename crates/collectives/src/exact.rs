//! Deterministic allreduce: gather → rank-ordered sum → broadcast.
//!
//! Floating-point addition is not associative, so a gradient allreduce that
//! sums in a data-dependent order breaks the bit-exact equivalence between
//! pipelined and sequential training. This implementation always reduces
//! contributions in rank order, making the result independent of thread
//! timing — the property the equivalence tests in `chimera-runtime` rely on.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use chimera_trace::{Counter, MetricsRegistry};

struct State {
    generation: u64,
    contributions: Vec<Option<Vec<f32>>>,
    arrived: usize,
    departed: usize,
    result: Option<Arc<Vec<f32>>>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    n: usize,
}

/// One member (rank) of an exact allreduce group.
pub struct ExactMember {
    rank: usize,
    shared: Arc<Shared>,
    calls: Arc<Counter>,
    bytes_reduced: Arc<Counter>,
}

/// Create an exact allreduce group of `n` members. Hand one member to each
/// participating thread.
pub fn exact_group(n: usize) -> Vec<ExactMember> {
    assert!(n >= 1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            generation: 0,
            contributions: (0..n).map(|_| None).collect(),
            arrived: 0,
            departed: 0,
            result: None,
        }),
        cv: Condvar::new(),
        n,
    });
    let reg = MetricsRegistry::global();
    let calls = reg.counter("collectives.exact.calls");
    let bytes_reduced = reg.counter("collectives.exact.bytes_reduced");
    (0..n)
        .map(|rank| ExactMember {
            rank,
            shared: shared.clone(),
            calls: calls.clone(),
            bytes_reduced: bytes_reduced.clone(),
        })
        .collect()
}

impl ExactMember {
    /// This member's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Sum `buf` across all members (in rank order) and write the result
    /// back into every member's `buf`. Blocks until the whole group arrives.
    pub fn allreduce_sum(&self, buf: &mut [f32]) {
        let n = self.shared.n;
        self.calls.inc();
        self.bytes_reduced.add(buf.len() as u64 * 4);
        if n == 1 {
            return;
        }
        let mut st = self.shared.state.lock();
        let gen = st.generation;
        st.contributions[self.rank] = Some(buf.to_vec());
        st.arrived += 1;
        if st.arrived == n {
            // Last to arrive reduces, strictly in rank order.
            let mut acc = st.contributions[0].take().expect("rank 0 contributed");
            for r in 1..n {
                let c = st.contributions[r].take().expect("rank contributed");
                assert_eq!(c.len(), acc.len(), "allreduce length mismatch");
                for (a, b) in acc.iter_mut().zip(&c) {
                    *a += b;
                }
            }
            st.result = Some(Arc::new(acc));
            self.shared.cv.notify_all();
        } else {
            while st.result.is_none() {
                self.shared.cv.wait(&mut st);
            }
        }
        let result = st.result.as_ref().expect("result present").clone();
        buf.copy_from_slice(&result);
        st.departed += 1;
        if st.departed == n {
            st.result = None;
            st.arrived = 0;
            st.departed = 0;
            st.generation += 1;
            self.shared.cv.notify_all();
        } else {
            while st.generation == gen {
                self.shared.cv.wait(&mut st);
            }
        }
    }

    /// Barrier across the group (an allreduce of nothing).
    pub fn barrier(&self) {
        let mut empty: [f32; 0] = [];
        // A zero-length allreduce still runs the arrive/depart protocol.
        self.allreduce_sum_slice(&mut empty);
    }

    fn allreduce_sum_slice(&self, buf: &mut [f32]) {
        self.allreduce_sum(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sums_across_threads() {
        let members = exact_group(4);
        let handles: Vec<_> = members
            .into_iter()
            .map(|m| {
                thread::spawn(move || {
                    let mut buf = vec![m.rank() as f32 + 1.0; 3];
                    m.allreduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![10.0, 10.0, 10.0]);
        }
    }

    #[test]
    fn repeated_rounds_are_isolated() {
        let members = exact_group(3);
        let handles: Vec<_> = members
            .into_iter()
            .map(|m| {
                thread::spawn(move || {
                    let mut outs = Vec::new();
                    for round in 0..10u32 {
                        let mut buf = vec![(m.rank() as f32 + 1.0) * round as f32];
                        m.allreduce_sum(&mut buf);
                        outs.push(buf[0]);
                    }
                    outs
                })
            })
            .collect();
        for h in handles {
            let outs = h.join().unwrap();
            for (round, &v) in outs.iter().enumerate() {
                assert_eq!(v, 6.0 * round as f32);
            }
        }
    }

    #[test]
    fn single_member_is_identity() {
        let mut g = exact_group(1);
        let m = g.pop().unwrap();
        let mut buf = vec![5.0, -1.0];
        m.allreduce_sum(&mut buf);
        assert_eq!(buf, vec![5.0, -1.0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let members = exact_group(4);
        let handles: Vec<_> = members
            .into_iter()
            .map(|m| {
                let counter = counter.clone();
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    m.barrier();
                    // After the barrier everyone must observe all arrivals.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn counts_calls_and_bytes() {
        let reg = MetricsRegistry::global();
        let calls = reg.counter("collectives.exact.calls");
        let bytes = reg.counter("collectives.exact.bytes_reduced");
        let (c0, b0) = (calls.get(), bytes.get());
        let members = exact_group(2);
        let handles: Vec<_> = members
            .into_iter()
            .map(|m| {
                thread::spawn(move || {
                    let mut buf = vec![1.0f32; 8];
                    m.allreduce_sum(&mut buf);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Lower bounds: other tests in this binary run groups concurrently.
        assert!(calls.get() - c0 >= 2);
        assert!(bytes.get() - b0 >= 2 * 8 * 4);
    }

    /// Rank-ordered reduction: result is bitwise identical across repeats
    /// even with values that expose non-associativity.
    #[test]
    fn deterministic_sum_order() {
        let run = || {
            let members = exact_group(3);
            let vals = [1e8f32, 1.0, -1e8];
            let handles: Vec<_> = members
                .into_iter()
                .map(|m| {
                    let v = vals[m.rank()];
                    thread::spawn(move || {
                        let mut buf = vec![v];
                        m.allreduce_sum(&mut buf);
                        buf[0].to_bits()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        };
        for _ in 0..5 {
            assert_eq!(run(), run());
        }
    }
}
