//! Measured model footprints, the liveness-driven pool pre-sizing plan, and
//! the runtime's element-exact memory tracker.
//!
//! This is the runtime half of the static/dynamic memory contract:
//!
//! * [`ModelFootprint::probe`] measures each stage's real stash footprint
//!   (full and boundary-only) by running one probe forward — no formulas
//!   that can drift from the model code — and implements
//!   [`chimera_verify::liveness::BufferSizes`] in **f32 elements**, so the
//!   verifier's dataflow engine can price a schedule in exactly the units
//!   the runtime's [`MemTracker`] counts.
//! * [`plan`] expands each statically-live buffer into its pool size-class
//!   census and takes the max-overlap per class: the number of same-class
//!   buffers ever held concurrently. [`crate::worker::Worker`] pre-warms its
//!   thread-local pool to that plan, so even the cold first micro-batch
//!   allocates nothing.
//! * [`MemTracker`] mirrors the static walk op for op inside the worker;
//!   `tests/mem_oracle.rs` pins the static peak equal to the tracked
//!   high-water mark, element-exact, across the scheme × depth matrix.

use std::collections::BTreeMap;

use chimera_core::op::Op;
use chimera_core::schedule::Schedule;
use chimera_core::StageId;
use chimera_nn::{MicroStash, Stage};
use chimera_tensor::{pool, Tensor};
use chimera_verify::liveness::{self, BufferKind, BufferSizes};

/// Measured memory footprint of one pipeline stage, in f32 elements.
#[derive(Debug, Clone)]
pub struct StageFootprint {
    /// Elements of a full activation stash of one micro-batch.
    pub full_elems: usize,
    /// Elements of the boundary-only stash kept under recomputation.
    pub boundary_elems: usize,
    /// Pool size-class census of the full stash: `(class, buffer count)`.
    pub census_full: Vec<(usize, usize)>,
    /// Pool size-class census of the boundary stash.
    pub census_boundary: Vec<(usize, usize)>,
    /// Flat parameter count — the size of a weight version, a gradient
    /// contribution, and the allreduce round-trip buffers.
    pub params: usize,
}

/// Per-stage measured footprints of one model partitioning.
#[derive(Debug, Clone)]
pub struct ModelFootprint {
    /// Indexed by stage id.
    pub stages: Vec<StageFootprint>,
}

fn census(stash: &MicroStash) -> Vec<(usize, usize)> {
    let mut by_class: BTreeMap<usize, usize> = BTreeMap::new();
    stash.for_each_pooled(&mut |len| {
        if let Some(class) = pool::class_of_request(len) {
            *by_class.entry(class).or_insert(0) += 1;
        }
    });
    by_class.into_iter().collect()
}

impl ModelFootprint {
    /// Measure every stage's footprint by one probe forward per stage on
    /// synthetic shapes. Stash sizes depend only on shapes, never values, so
    /// the probe numbers are exactly what the training loop will stash.
    pub fn probe(stages: &[Stage], micro_batch: usize) -> Self {
        let d = stages.len();
        let fps = stages
            .iter()
            .enumerate()
            .map(|(s, stage)| {
                let cfg = stage.config();
                let rows = micro_batch * cfg.seq;
                let tokens = vec![0u32; rows];
                let targets = vec![0u32; rows];
                let last = s + 1 == d;
                let x = (s > 0).then(|| Tensor::zeros(rows, cfg.hidden));
                let (_, mut stash) = stage.forward(
                    x,
                    (s == 0).then_some(tokens.as_slice()),
                    last.then_some(targets.as_slice()),
                );
                let full_elems = stash.elements();
                let census_full = census(&stash);
                stash.drop_to_boundary();
                StageFootprint {
                    full_elems,
                    boundary_elems: stash.elements(),
                    census_boundary: census(&stash),
                    census_full,
                    params: stage.num_params(),
                }
            })
            .collect();
        ModelFootprint { stages: fps }
    }
}

impl BufferSizes for ModelFootprint {
    fn full_stash(&self, op: &Op) -> f64 {
        let covered = op.covered_micros().count() as f64;
        self.stages[op.stage.idx()].full_elems as f64 * covered
    }

    fn boundary_stash(&self, op: &Op) -> f64 {
        let covered = op.covered_micros().count() as f64;
        self.stages[op.stage.idx()].boundary_elems as f64 * covered
    }

    fn weight_version(&self, stage: StageId) -> f64 {
        self.stages[stage.idx()].params as f64
    }

    fn grad_contribution(&self, op: &Op) -> f64 {
        self.stages[op.stage.idx()].params as f64
    }
}

/// One worker's pool pre-sizing plan plus its static memory oracle.
#[derive(Debug, Clone)]
pub struct WorkerMemPlan {
    /// `(size class, max concurrently-held pooled buffers)` — how many spare
    /// buffers per class the worker's pool must hold, beyond one compute
    /// op's transient working set, for a zero-miss first iteration.
    pub classes: Vec<(usize, usize)>,
    /// Exact static peak of tracked dynamic memory (stashes, remats, weight
    /// versions, pending gradients), in f32 elements.
    pub static_peak_elems: u64,
    /// Op index whose execution first attains the peak.
    pub cliff: Option<usize>,
}

/// Run the verifier's liveness engine over `sched` under measured sizes and
/// fold each worker's live buffers into a per-size-class slot demand.
pub fn plan(sched: &Schedule, fp: &ModelFootprint) -> Vec<WorkerMemPlan> {
    let rep = liveness::analyze(sched, fp);
    let recomputing: Vec<(u32, u32)> = {
        let mut v = Vec::new();
        for (_, _, op) in sched.iter_ops() {
            if op.recomputes() && !v.contains(&(op.replica.0, op.stage.0)) {
                v.push((op.replica.0, op.stage.0));
            }
        }
        v
    };

    rep.lives
        .iter()
        .enumerate()
        .map(|(w, lives)| {
            let mut intervals: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
            let push = |intervals: &mut BTreeMap<usize, Vec<(usize, usize)>>,
                        class: usize,
                        count: usize,
                        range: (usize, usize)| {
                for _ in 0..count {
                    intervals.entry(class).or_default().push(range);
                }
            };
            // The engine tracks stashes at half-micro granularity; the pool
            // census is per whole stash, so merge halves back into one range
            // per (replica, stage, micro).
            let mut stash_ranges: BTreeMap<(u32, u32, u64), (usize, usize)> = BTreeMap::new();
            for b in lives {
                match b.kind {
                    BufferKind::Stash => {
                        let e = stash_ranges
                            .entry((b.replica, b.stage, b.key / 2))
                            .or_insert((b.def, b.kill));
                        e.0 = e.0.min(b.def);
                        e.1 = e.1.max(b.kill);
                    }
                    BufferKind::Remat => {
                        // Rematerialization rebuilds the full stash minus the
                        // boundary input that was already resident.
                        let st = &fp.stages[b.stage as usize];
                        let boundary: BTreeMap<usize, usize> =
                            st.census_boundary.iter().copied().collect();
                        for &(class, count) in &st.census_full {
                            let kept = boundary.get(&class).copied().unwrap_or(0);
                            push(
                                &mut intervals,
                                class,
                                count.saturating_sub(kept),
                                (b.def, b.kill),
                            );
                        }
                    }
                    BufferKind::WeightVersion | BufferKind::Grad => {
                        if let Some(class) =
                            pool::class_of_request(fp.stages[b.stage as usize].params)
                        {
                            push(&mut intervals, class, 1, (b.def, b.kill));
                        }
                    }
                }
            }
            for ((replica, stage, _), range) in stash_ranges {
                let st = &fp.stages[stage as usize];
                let cen = if recomputing.contains(&(replica, stage)) {
                    &st.census_boundary
                } else {
                    &st.census_full
                };
                for &(class, count) in cen {
                    push(&mut intervals, class, count, range);
                }
            }
            let classes = intervals
                .into_iter()
                .map(|(c, iv)| (c, liveness::max_overlap(&iv)))
                .collect();
            WorkerMemPlan {
                classes,
                static_peak_elems: rep.peak[w].round() as u64,
                cliff: rep.cliff[w],
            }
        })
        .collect()
}

/// Element-exact accounting of the buffers a worker holds *across* ops:
/// activation stashes, rematerializations, copy-on-update weight versions,
/// and pending gradient contributions. Mirrors the event order of the static
/// walk in [`chimera_verify::liveness::analyze`] — defs (with a peak check)
/// before kills within one op — so the high-water mark is comparable to the
/// static peak, element for element.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemTracker {
    cur: u64,
    high: u64,
    high_at: Option<usize>,
}

impl MemTracker {
    /// A buffer of `elems` f32s becomes resident at op `at`.
    pub fn add(&mut self, elems: usize, at: usize) {
        self.cur += elems as u64;
        if self.cur > self.high {
            self.high = self.cur;
            self.high_at = Some(at);
        }
    }

    /// A buffer of `elems` f32s is freed.
    pub fn sub(&mut self, elems: usize) {
        self.cur = self.cur.saturating_sub(elems as u64);
    }

    /// Elements currently tracked as resident.
    pub fn current(&self) -> u64 {
        self.cur
    }

    /// The run's high-water mark in f32 elements.
    pub fn high_water(&self) -> u64 {
        self.high
    }

    /// Op index whose execution first attained the high-water mark.
    pub fn high_at(&self) -> Option<usize> {
        self.high_at
    }
}

/// Per-worker memory outcome of a training run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemReport {
    /// Observed high-water mark of tracked dynamic memory, f32 elements —
    /// the number the static oracle must equal exactly.
    pub high_water_elems: u64,
    /// Op index (within one iteration's schedule) that first attained it.
    pub high_at_op: Option<usize>,
    /// This worker thread's pool misses during its first executed compute
    /// op. Zero when pre-warming is on.
    pub first_micro_misses: u64,
    /// Pool misses across the whole first iteration.
    pub first_iter_misses: u64,
    /// Whether the worker pre-warmed its pool from the liveness plan.
    pub prewarmed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_core::named::build_named;
    use chimera_nn::ModelConfig;

    #[test]
    fn probe_matches_stage_measurements() {
        let cfg = ModelConfig::tiny();
        let stages = Stage::build_all(cfg, 4);
        let fp = ModelFootprint::probe(&stages, 2);
        assert_eq!(fp.stages.len(), 4);
        let rows = 2 * cfg.seq;
        // Stage 0: tokens only at the boundary; later stages keep the input.
        assert_eq!(fp.stages[0].boundary_elems, 0);
        assert_eq!(fp.stages[1].boundary_elems, rows * cfg.hidden);
        for (s, st) in fp.stages.iter().enumerate() {
            assert!(st.full_elems > st.boundary_elems, "stage {s}");
            assert_eq!(st.params, stages[s].num_params());
            let pooled: usize = st.census_full.iter().map(|&(_, c)| c).sum();
            assert!(pooled > 0, "stage {s} census empty");
        }
        // The last stage additionally stashes the head (probs are
        // rows × vocab — the largest single buffer).
        assert!(fp.stages[3].full_elems > fp.stages[1].full_elems);
    }

    #[test]
    fn plan_prices_async_versions_in_the_params_class() {
        let cfg = ModelConfig::tiny();
        let d = 4;
        let stages = Stage::build_all(cfg, d);
        let fp = ModelFootprint::probe(&stages, 2);
        let sched = build_named("pipedream", d, 2 * d).expect("pipedream schedule");
        let plans = plan(&sched, &fp);
        assert_eq!(plans.len(), sched.num_workers());
        // Stage 0 stashes weight versions in steady state: its plan must
        // provision more than one buffer in the params size class.
        let params_class = pool::class_of_request(fp.stages[0].params).expect("pooled");
        let w0 = &plans[0];
        let slots = w0
            .classes
            .iter()
            .find(|&&(c, _)| c == params_class)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(slots >= 2, "stage-0 plan {slots} slots in params class");
        assert!(w0.static_peak_elems > 0);
        assert!(w0.cliff.is_some());
    }

    #[test]
    fn tracker_high_water_is_first_attained_max() {
        let mut t = MemTracker::default();
        t.add(10, 0);
        t.add(5, 1);
        t.sub(15);
        t.add(15, 3); // re-attains 15 — high_at stays at the first attainment
        assert_eq!(t.high_water(), 15);
        assert_eq!(t.high_at(), Some(1));
        assert_eq!(t.current(), 15);
        t.sub(100); // saturates
        assert_eq!(t.current(), 0);
    }
}
