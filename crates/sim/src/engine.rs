//! Top-level simulation entry points.

use chimera_core::op::OpKind;
use chimera_core::schedule::Schedule;
use chimera_core::unit_time::{execute_with, validate_span, ExecError, Timeline};
use chimera_trace::Event;

use crate::cost::SimCostModel;
use crate::fault::{RecoveryAccounting, RecoveryModel};
use crate::memory;

/// Result of simulating one schedule under a cost model.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock time of the simulated span, seconds.
    pub span_s: f64,
    /// Per-iteration time, seconds (`span_s / iterations`).
    pub iter_time_s: f64,
    /// Bubble ratio (idle fraction averaged over workers).
    pub bubble_ratio: f64,
    /// Compute-busy seconds per worker.
    pub busy_s: Vec<f64>,
    /// Peak activation bytes per worker.
    pub peak_act_bytes: Vec<u64>,
    /// Static weight bytes per worker (params × versions + grad/opt state).
    pub weight_bytes: Vec<u64>,
    /// Peak total memory per worker.
    pub peak_mem_bytes: Vec<u64>,
    /// The executed timeline (tick = 1 ns).
    pub timeline: Timeline,
    /// Fault and recovery accounting, populated by
    /// [`crate::fault::simulate_faulty`] (`None` for fault-free runs).
    pub recovery: Option<RecoveryAccounting>,
}

impl SimReport {
    /// Training throughput in samples/s for the whole job, given the
    /// mini-batch size `b_hat` consumed per iteration (across all `W`
    /// data-parallel groups).
    pub fn throughput(&self, b_hat: u64) -> f64 {
        b_hat as f64 / self.iter_time_s
    }

    /// Largest per-worker peak memory.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Whether the configuration fits in `capacity_bytes` per device.
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        memory::fits(&self.peak_mem_bytes, capacity_bytes)
    }

    /// The executed timeline as trace events: one track per worker, one span
    /// per op plus explicit idle spans, ready for
    /// [`chimera_trace::write_chrome_trace`] or [`chimera_trace::write_jsonl`].
    /// Faulty runs additionally carry crash/detect/restore/replay spans.
    pub fn to_trace(&self) -> Vec<Event> {
        let mut events = crate::trace::timeline_events(&self.timeline, 0, true);
        if let Some(acc) = &self.recovery {
            events.extend(acc.trace_events(0));
        }
        events
    }

    /// Expected training throughput in samples/s when workers fail with mean
    /// time between failures `mtbf_s`, surviving via the checkpoint-restart
    /// scheme of `recovery`: each iteration pays its share of the checkpoint
    /// cadence, and each failure costs detection, restore, and the expected
    /// half-interval of replayed work.
    pub fn effective_throughput_under_mtbf(
        &self,
        b_hat: u64,
        mtbf_s: f64,
        recovery: &RecoveryModel,
    ) -> f64 {
        assert!(mtbf_s > 0.0, "MTBF must be positive");
        let ckpt_frac =
            recovery.checkpoint_s / (recovery.checkpoint_every.max(1) as f64 * self.iter_time_s);
        let fail_frac = recovery.expected_failure_overhead_s(self.iter_time_s) / mtbf_s;
        self.throughput(b_hat) / (1.0 + ckpt_frac + fail_frac)
    }

    /// Where the span's time went, per worker and in total.
    pub fn breakdown(&self) -> Breakdown {
        let mut workers = Vec::with_capacity(self.timeline.spans.len());
        for (w, spans) in self.timeline.spans.iter().enumerate() {
            let mut wb = WorkerBreakdown {
                worker: w as u32,
                forward_s: 0.0,
                backward_s: 0.0,
                sync_s: 0.0,
                idle_s: 0.0,
            };
            let mut occupied = 0u64;
            for s in spans {
                let dur = s.finish - s.start;
                occupied += dur;
                let secs = SimCostModel::seconds(dur);
                match s.op.kind {
                    OpKind::Forward => wb.forward_s += secs,
                    OpKind::Backward { .. } => wb.backward_s += secs,
                    OpKind::AllReduceLaunch | OpKind::AllReduceWait => wb.sync_s += secs,
                }
            }
            wb.idle_s = SimCostModel::seconds(self.timeline.makespan - occupied);
            workers.push(wb);
        }
        Breakdown {
            makespan_s: self.span_s,
            workers,
        }
    }
}

/// Per-worker split of one worker's span time (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerBreakdown {
    /// Worker index within the pipeline group.
    pub worker: u32,
    /// Seconds spent in forward passes.
    pub forward_s: f64,
    /// Seconds spent in backward passes (including recomputation).
    pub backward_s: f64,
    /// Seconds spent in gradient-sync ops (allreduce launches and waits).
    pub sync_s: f64,
    /// Seconds the worker sat idle within the makespan.
    pub idle_s: f64,
}

/// Where a simulated span's time went (see [`SimReport::breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Wall-clock span, seconds.
    pub makespan_s: f64,
    /// One entry per worker.
    pub workers: Vec<WorkerBreakdown>,
}

impl serde::Serialize for WorkerBreakdown {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("WorkerBreakdown", 5)?;
        st.serialize_field("worker", &self.worker)?;
        st.serialize_field("forward_s", &self.forward_s)?;
        st.serialize_field("backward_s", &self.backward_s)?;
        st.serialize_field("sync_s", &self.sync_s)?;
        st.serialize_field("idle_s", &self.idle_s)?;
        st.end()
    }
}

impl serde::Serialize for Breakdown {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("Breakdown", 2)?;
        st.serialize_field("makespan_s", &self.makespan_s)?;
        st.serialize_field("workers", &self.workers)?;
        st.end()
    }
}

/// Serializes every summary field; the raw `timeline` is deliberately
/// omitted (export it separately via [`SimReport::to_trace`]).
impl serde::Serialize for SimReport {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("SimReport", 8)?;
        st.serialize_field("span_s", &self.span_s)?;
        st.serialize_field("iter_time_s", &self.iter_time_s)?;
        st.serialize_field("bubble_ratio", &self.bubble_ratio)?;
        st.serialize_field("busy_s", &self.busy_s)?;
        st.serialize_field("peak_act_bytes", &self.peak_act_bytes)?;
        st.serialize_field("weight_bytes", &self.weight_bytes)?;
        st.serialize_field("peak_mem_bytes", &self.peak_mem_bytes)?;
        st.serialize_field("recovery", &self.recovery)?;
        st.end()
    }
}

/// Simulate a single iteration of `sched` under `cost`.
pub fn simulate(sched: &Schedule, cost: &SimCostModel) -> Result<SimReport, ExecError> {
    simulate_span(sched, cost, 1)
}

/// Simulate a schedule that covers `iterations` training iterations (e.g. an
/// unrolled steady-state schedule of an asynchronous scheme) and report the
/// amortized per-iteration time.
///
/// Fails with [`ExecError::InvalidIterations`] when `iterations` is zero or
/// does not divide the schedule's micro-batch total, and with
/// [`ExecError::InconsistentSpan`] when some stage's op count cannot cover
/// the claimed span.
pub fn simulate_span(
    sched: &Schedule,
    cost: &SimCostModel,
    iterations: u32,
) -> Result<SimReport, ExecError> {
    validate_span(sched, iterations)?;
    let timeline = execute_with(sched, cost)?;
    let span_s = SimCostModel::seconds(timeline.makespan);
    let busy_s = timeline
        .busy
        .iter()
        .map(|&b| SimCostModel::seconds(b))
        .collect();
    let peak_act_bytes: Vec<u64> = timeline
        .peak_activations
        .iter()
        .map(|&a| a.round() as u64)
        .collect();
    let weight_bytes = memory::weights_bytes(sched, cost);
    let peak_mem_bytes = memory::peak_memory_bytes(sched, cost, &timeline);
    Ok(SimReport {
        span_s,
        iter_time_s: span_s / iterations as f64,
        bubble_ratio: timeline.bubble_ratio(),
        busy_s,
        peak_act_bytes,
        weight_bytes,
        peak_mem_bytes,
        timeline,
        recovery: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::AllReduceAlgo;
    use crate::cost::StageCosts;
    use crate::network::{NetworkModel, Topology};
    use chimera_core::baselines::{dapple, gems, gpipe, pipedream_2bw_steady, pipedream_steady};
    use chimera_core::chimera::{chimera, ChimeraConfig};
    use chimera_core::schedule::SyncStrategy;
    use chimera_core::sync::place_sync;
    use chimera_core::unit_time::UnitCosts;

    fn cost(d: u32) -> SimCostModel {
        SimCostModel {
            stages: vec![
                StageCosts {
                    fwd_s: 10e-3,
                    bwd_s: 20e-3,
                    recompute_s: 10e-3,
                    boundary_bytes: 4 << 20,
                    act_bytes: 64 << 20,
                    param_bytes: 80 << 20,
                    grad_opt_bytes: 160 << 20,
                };
                d as usize
            ],
            network: NetworkModel::cray_aries(),
            topology: Topology::one_per_node(d),
            allreduce_participants: 16,
            allreduce_algo: AllReduceAlgo::Rabenseifner,
            allreduce_beta_factor: 1.0,
            launch_overhead_s: 0.2e-3,
            half_chunk_penalty: 1.15,
            comm_compute_interference: 0.0,
            p2p_host_overhead_s: 0.0,
            p2p_host_s_per_byte: 0.0,
            grad_compression: 1.0,
        }
    }

    /// Chimera beats DAPPLE and GPipe per iteration for N = D (the paper's
    /// central performance claim, driven by the halved bubble count).
    #[test]
    fn chimera_fastest_synchronous_at_n_eq_d() {
        let d = 8;
        let n = 8;
        let c = cost(d);
        let chim = simulate(
            &place_sync(
                chimera(&ChimeraConfig::new(d, n)).unwrap(),
                SyncStrategy::EagerOpt,
                UnitCosts::practical(),
            ),
            &c,
        )
        .unwrap();
        let dap = simulate(
            &place_sync(dapple(d, n), SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        let gp = simulate(
            &place_sync(gpipe(d, n), SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        let gm = simulate(
            &place_sync(gems(d, n), SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        assert!(
            chim.iter_time_s < dap.iter_time_s,
            "{} vs DAPPLE {}",
            chim.iter_time_s,
            dap.iter_time_s
        );
        assert!(chim.iter_time_s < gp.iter_time_s);
        assert!(chim.iter_time_s < gm.iter_time_s);
        // GEMS is the slowest synchronous scheme (highest bubble ratio).
        assert!(gm.iter_time_s > dap.iter_time_s);
    }

    /// Asynchronous PipeDream-2BW approaches the bubble-free iteration time;
    /// Chimera comes close (Fig. 14/15 show them within ~1.2x).
    #[test]
    fn chimera_close_to_async_steady_state() {
        let d = 4;
        let n = 4;
        let iters = 8;
        let c = cost(d);
        let bw = simulate_span(&pipedream_2bw_steady(d, n, iters), &c, iters).unwrap();
        let chim = simulate(
            &place_sync(
                chimera(&ChimeraConfig::new(d, n)).unwrap(),
                SyncStrategy::EagerOpt,
                UnitCosts::practical(),
            ),
            &c,
        )
        .unwrap();
        assert!(chim.iter_time_s < 1.6 * bw.iter_time_s);
    }

    /// PipeDream's per-micro blocking sync makes it slower than 2BW.
    #[test]
    fn per_micro_sync_hurts_pipedream() {
        let d = 4;
        let n = 4;
        let iters = 8;
        let c = cost(d);
        let pd = simulate_span(&pipedream_steady(d, n, iters), &c, iters).unwrap();
        let bw = simulate_span(&pipedream_2bw_steady(d, n, iters), &c, iters).unwrap();
        assert!(pd.iter_time_s > bw.iter_time_s);
    }

    #[test]
    fn throughput_and_fit_helpers() {
        let d = 4;
        let c = cost(d);
        let rep = simulate(&dapple(d, 4), &c).unwrap();
        let thr = rep.throughput(512);
        assert!((thr - 512.0 / rep.iter_time_s).abs() < 1e-9);
        assert!(rep.fits(u64::MAX));
        assert!(!rep.fits(1));
        assert!(rep.max_peak_mem() > 0);
    }

    /// The bare-assert panic path is gone: bad spans are descriptive errors.
    #[test]
    fn simulate_span_rejects_invalid_spans() {
        let d = 4;
        let c = cost(d);
        let sched = dapple(d, 4);
        assert!(matches!(
            simulate_span(&sched, &c, 0),
            Err(ExecError::InvalidIterations { iterations: 0, .. })
        ));
        assert!(matches!(
            simulate_span(&sched, &c, 3),
            Err(ExecError::InvalidIterations { iterations: 3, .. })
        ));
        // Truncating a worker's ops makes the span inconsistent.
        let mut broken = dapple(d, 4);
        broken.workers[0].pop();
        assert!(matches!(
            simulate_span(&broken, &c, 1),
            Err(ExecError::InconsistentSpan { .. })
        ));
        // All generator schedules pass the check.
        for iters in [1u32, 2, 4] {
            assert!(simulate_span(&pipedream_steady(d, 4, iters), &c, iters).is_ok());
        }
    }

    #[test]
    fn report_serializes_without_timeline() {
        let d = 4;
        let c = cost(d);
        let rep = simulate(&dapple(d, 4), &c).unwrap();
        let v = serde_json::to_value(&rep).unwrap();
        assert_eq!(v["span_s"].as_f64().unwrap(), rep.span_s);
        assert_eq!(v["busy_s"].as_array().unwrap().len(), rep.busy_s.len());
        assert!(v.get("timeline").is_none());
        // And round-trips through text.
        let text = serde_json::to_string(&v).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["bubble_ratio"].as_f64().unwrap(), rep.bubble_ratio);
    }

    #[test]
    fn breakdown_accounts_for_the_whole_span() {
        let d = 4;
        let c = cost(d);
        let rep = simulate(&dapple(d, 4), &c).unwrap();
        let bd = rep.breakdown();
        assert_eq!(bd.workers.len(), d as usize);
        for wb in &bd.workers {
            let total = wb.forward_s + wb.backward_s + wb.sync_s + wb.idle_s;
            assert!(
                (total - bd.makespan_s).abs() < 1e-9,
                "worker {}: {total} vs {}",
                wb.worker,
                bd.makespan_s
            );
        }
        // Serializes with per-worker entries.
        let v = serde_json::to_value(&bd).unwrap();
        assert_eq!(v["workers"].as_array().unwrap().len(), d as usize);
        assert!(v["workers"][0]["forward_s"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn trace_export_matches_timeline() {
        let d = 4;
        let c = cost(d);
        let rep = simulate(&dapple(d, 4), &c).unwrap();
        let events = rep.to_trace();
        let total_ops: usize = rep.timeline.spans.iter().map(Vec::len).sum();
        assert!(events.len() >= total_ops);
    }

    /// Eager-opt is at least as fast as plain eager (Fig. 12: middle-stage
    /// eager launches cost overhead without overlap benefit).
    #[test]
    fn eager_opt_not_slower_than_eager() {
        let d = 8;
        let c = cost(d);
        let base = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let eager = simulate(
            &place_sync(base.clone(), SyncStrategy::Eager, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        let opt = simulate(
            &place_sync(base, SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        assert!(opt.iter_time_s <= eager.iter_time_s + 1e-9);
    }
}
