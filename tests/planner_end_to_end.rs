//! End-to-end planner/simulator checks of the paper's headline shapes
//! (Figs. 1, 14, 15): who wins, and by roughly what factor.

use chimera::core::chimera::ScaleMethod;
use chimera::perf::planner::{best, plan_chimera, PlanScheme};
use chimera::perf::{ClusterSpec, ModelSpec};

fn chimera_best(model: ModelSpec, cluster: ClusterSpec, p: u32, b_hat: u64) -> f64 {
    [
        ScaleMethod::Direct,
        ScaleMethod::ForwardDoubling { recompute: true },
        ScaleMethod::BackwardHalving,
    ]
    .into_iter()
    .filter_map(|s| plan_chimera(1, s, model, cluster, p, b_hat))
    .map(|c| c.throughput)
    .fold(0.0, f64::max)
}

/// GPT-2 at scale (Fig. 1 / Fig. 15, shrunk to P=512 to keep test time
/// modest): Chimera beats every synchronous baseline and PipeDream.
#[test]
fn gpt2_at_scale_chimera_wins_synchronous() {
    let model = ModelSpec::gpt2();
    let cluster = ClusterSpec::piz_daint();
    let (p, b_hat) = (512, 512u64);
    let chim = chimera_best(model, cluster, p, b_hat);
    assert!(chim > 0.0);
    for scheme in [
        PlanScheme::GPipe,
        PlanScheme::Dapple,
        PlanScheme::Gems,
        PlanScheme::PipeDream,
    ] {
        let base = best(scheme, model, cluster, p, b_hat)
            .map(|c| c.throughput)
            .unwrap_or(0.0);
        assert!(
            chim > base,
            "{}: chimera {chim:.1} vs {base:.1}",
            scheme.label()
        );
    }
    // GEMS loses big (paper: 2.3x).
    let gems = best(PlanScheme::Gems, model, cluster, p, b_hat).unwrap();
    assert!(chim / gems.throughput > 1.5);
    // PipeDream-2BW is the closest competitor (paper: within ~1.2x either way).
    let bw = best(PlanScheme::PipeDream2Bw, model, cluster, p, b_hat).unwrap();
    let ratio = chim / bw.throughput;
    assert!(
        (0.7..1.4).contains(&ratio),
        "Chimera/2BW ratio {ratio:.2} out of the near-parity band"
    );
}

/// Bert-48 at 32 nodes (Fig. 14): Chimera beats DAPPLE and GPipe.
#[test]
fn bert_32_nodes_chimera_beats_sync() {
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    let (p, b_hat) = (32, 512u64);
    let chim = chimera_best(model, cluster, p, b_hat);
    for scheme in [PlanScheme::GPipe, PlanScheme::Dapple, PlanScheme::Gems] {
        let base = best(scheme, model, cluster, p, b_hat).unwrap().throughput;
        assert!(chim > base, "{}: {chim:.1} vs {base:.1}", scheme.label());
    }
}

/// Weak scaling: Chimera's throughput grows near-linearly with P for GPT-2
/// (the paper reports 91.4% efficiency from 512 to 2,048 nodes).
#[test]
fn chimera_weak_scaling_efficiency() {
    let model = ModelSpec::gpt2();
    let cluster = ClusterSpec::piz_daint();
    let t512 = chimera_best(model, cluster, 512, 512);
    let t1024 = chimera_best(model, cluster, 1024, 1024);
    let eff = (t1024 / t512) / 2.0;
    assert!(eff > 0.85, "512->1024 node efficiency {eff:.3}");
}

/// The planner's Eq. 1-selected Chimera configuration is close to the
/// simulator-best one (the paper: within 1.7% for GPT-2).
#[test]
fn model_selection_near_optimal() {
    use chimera::perf::planner::{batch_candidates, depth_candidates, evaluate};
    let model = ModelSpec::bert48();
    let cluster = ClusterSpec::piz_daint();
    let (p, b_hat) = (32u32, 512u64);
    let scheme = PlanScheme::Chimera {
        f: 1,
        scale: ScaleMethod::Direct,
    };
    let picked = plan_chimera(1, ScaleMethod::Direct, model, cluster, p, b_hat).unwrap();
    // Exhaustive simulated best.
    let mut best_sim = 0.0f64;
    for d in depth_candidates(p, &model) {
        let w = p / d;
        for b in batch_candidates(b_hat, w) {
            if let Some(c) = evaluate(scheme, model, cluster, p, b_hat, w, d, b) {
                if c.fits {
                    best_sim = best_sim.max(c.throughput);
                }
            }
        }
    }
    assert!(
        picked.throughput >= 0.9 * best_sim,
        "model picked {:.1}, simulated best {:.1}",
        picked.throughput,
        best_sim
    );
}

/// Memory claim of §4.1: at the same configuration Chimera's per-worker
/// peaks are markedly more balanced than DAPPLE's and its peak is within
/// ~15% of DAPPLE's despite holding two model replicas.
#[test]
fn memory_balance_claim() {
    use chimera::core::baselines::dapple;
    use chimera::core::chimera::{chimera, ChimeraConfig};
    use chimera::core::unit_time::execute_with;
    use chimera::perf::TrainConfig;
    use chimera::sim::memory;

    let cfg = |replicas| TrainConfig {
        model: ModelSpec::gpt2(),
        cluster: ClusterSpec::piz_daint(),
        d: 8,
        w: 4,
        b: 1,
        stage_replicas: replicas,
    };
    let chim = chimera(&ChimeraConfig::new(8, 16)).unwrap();
    let dap = dapple(8, 16);
    let cost_c = cfg(2).cost_model();
    let cost_d = cfg(1).cost_model();
    let peaks_c = memory::peak_memory_bytes(&chim, &cost_c, &execute_with(&chim, &cost_c).unwrap());
    let peaks_d = memory::peak_memory_bytes(&dap, &cost_d, &execute_with(&dap, &cost_d).unwrap());
    assert!(memory::imbalance(&peaks_c) < 0.5 * memory::imbalance(&peaks_d));
    let max_c = *peaks_c.iter().max().unwrap() as f64;
    let max_d = *peaks_d.iter().max().unwrap() as f64;
    assert!(
        max_c < 1.25 * max_d,
        "chimera peak {max_c} vs dapple {max_d}"
    );
}
