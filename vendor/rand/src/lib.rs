//! Offline stub of `rand`: a seeded xorshift generator behind a minimal
//! `Rng` trait. The workspace declares rand as a dev-dependency but rolls
//! its own deterministic generators; this exists to satisfy the manifest.

/// Minimal random-source trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        range.start + self.next_u64() % (range.end - range.start)
    }
}

/// Deterministic xorshift64* generator.
pub struct StdRng(u64);

impl StdRng {
    /// Seeded construction (zero is mapped to a fixed non-zero seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A generator seeded from the current process id (stub for `rand`'s
/// thread-local generator; deterministic enough for dev use).
pub fn thread_rng() -> StdRng {
    StdRng::seed_from_u64(std::process::id() as u64 + 1)
}
