//! Nonlinear kernels shared by the transformer layers: softmax, GELU, and
//! layer normalization, each with its exact backward.

use crate::tensor::Tensor;

/// Row-wise softmax (numerically stabilized).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Backward of row-wise softmax: given `y = softmax(x)` and `dy`, returns
/// `dx = y ⊙ (dy - (y·dy))` per row.
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!((y.rows(), y.cols()), (dy.rows(), dy.cols()));
    let mut out = Tensor::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let dot: f32 = yr.iter().zip(dyr).map(|(&a, &b)| a * b).sum();
        for (o, (&yv, &dyv)) in out.row_mut(r).iter_mut().zip(yr.iter().zip(dyr)) {
            *o = yv * (dyv - dot);
        }
    }
    out
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/π)

/// GELU activation (tanh approximation).
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(|v| 0.5 * v * (1.0 + (GELU_C * (v + 0.044715 * v * v * v)).tanh()))
}

/// Backward of [`gelu`]: `dx = dy * gelu'(x)`.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!((x.rows(), x.cols()), (dy.rows(), dy.cols()));
    let grad = x.map(|v| {
        let inner = GELU_C * (v + 0.044715 * v * v * v);
        let t = inner.tanh();
        let sech2 = 1.0 - t * t;
        0.5 * (1.0 + t) + 0.5 * v * sech2 * GELU_C * (1.0 + 3.0 * 0.044715 * v * v)
    });
    grad.hadamard(dy)
}

/// Stash produced by [`layernorm`] for its backward.
#[derive(Debug, Clone)]
pub struct LayerNormStash {
    /// Normalized input `x̂`.
    pub xhat: Tensor,
    /// Per-row `1/σ`.
    pub inv_std: Vec<f32>,
}

impl LayerNormStash {
    /// Total `f32` elements held by this stash.
    pub fn elements(&self) -> usize {
        self.xhat.len() + self.inv_std.len()
    }

    /// Visit each pool-backed buffer's length (the `inv_std` vector is a
    /// plain allocation and is not pooled).
    pub fn for_each_pooled(&self, f: &mut dyn FnMut(usize)) {
        f(self.xhat.len());
    }
}

const LN_EPS: f32 = 1e-5;

/// Layer normalization over each row: `y = γ ⊙ x̂ + β`.
pub fn layernorm(x: &Tensor, gamma: &[f32], beta: &[f32]) -> (Tensor, LayerNormStash) {
    let n = x.cols();
    assert_eq!(gamma.len(), n);
    assert_eq!(beta.len(), n);
    let mut xhat = x.clone();
    let mut inv_std = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = xhat.row_mut(r);
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + LN_EPS).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mean) * inv;
        }
        inv_std.push(inv);
    }
    let mut y = xhat.clone();
    for r in 0..y.rows() {
        for (c, v) in y.row_mut(r).iter_mut().enumerate() {
            *v = *v * gamma[c] + beta[c];
        }
    }
    (y, LayerNormStash { xhat, inv_std })
}

/// Backward of [`layernorm`]: returns `(dx, dγ, dβ)`.
pub fn layernorm_backward(
    stash: &LayerNormStash,
    gamma: &[f32],
    dy: &Tensor,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let n = dy.cols();
    let mut dgamma = vec![0.0f32; n];
    let mut dbeta = vec![0.0f32; n];
    let mut dx = Tensor::zeros(dy.rows(), n);
    for r in 0..dy.rows() {
        let xhat = stash.xhat.row(r);
        let dyr = dy.row(r);
        let mut sum_dxhat = 0.0f32;
        let mut sum_dxhat_xhat = 0.0f32;
        // dxhat = dy * gamma
        for c in 0..n {
            let dxhat = dyr[c] * gamma[c];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat[c];
            dgamma[c] += dyr[c] * xhat[c];
            dbeta[c] += dyr[c];
        }
        let inv = stash.inv_std[r];
        let nf = n as f32;
        for c in 0..n {
            let dxhat = dyr[c] * gamma[c];
            dx.set(
                r,
                c,
                inv / nf * (nf * dxhat - sum_dxhat - xhat[c] * sum_dxhat_xhat),
            );
        }
    }
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Central-difference numerical gradient check for a scalar loss
    /// `L = Σ y ⊙ w` of a tensor op.
    fn num_grad(x: &Tensor, weights: &Tensor, f: impl Fn(&Tensor) -> Tensor) -> Tensor {
        let eps = 1e-3f32;
        let mut g = Tensor::zeros(x.rows(), x.cols());
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = f(&xp).hadamard(weights).data().iter().sum();
            let lm: f32 = f(&xm).hadamard(weights).data().iter().sum();
            g.data_mut()[i] = (lp - lm) / (2.0 * eps);
        }
        g
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(1);
        let x = Tensor::normal(4, 7, 2.0, &mut rng);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_backward_matches_numeric() {
        let mut rng = Rng::new(2);
        let x = Tensor::normal(3, 5, 1.0, &mut rng);
        let w = Tensor::normal(3, 5, 1.0, &mut rng);
        let y = softmax_rows(&x);
        let analytic = softmax_rows_backward(&y, &w);
        let numeric = num_grad(&x, &w, softmax_rows);
        assert!(
            analytic.max_abs_diff(&numeric) < 2e-3,
            "diff {}",
            analytic.max_abs_diff(&numeric)
        );
    }

    #[test]
    fn gelu_values_and_backward() {
        let x = Tensor::from_vec(1, 3, vec![-2.0, 0.0, 2.0]);
        let y = gelu(&x);
        assert!((y.get(0, 1)).abs() < 1e-6);
        assert!(y.get(0, 2) > 1.9 && y.get(0, 2) < 2.0);
        assert!(y.get(0, 0) > -0.1 && y.get(0, 0) < 0.0);

        let mut rng = Rng::new(3);
        let x = Tensor::normal(2, 6, 1.0, &mut rng);
        let w = Tensor::normal(2, 6, 1.0, &mut rng);
        let analytic = gelu_backward(&x, &w);
        let numeric = num_grad(&x, &w, gelu);
        assert!(analytic.max_abs_diff(&numeric) < 2e-3);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = Rng::new(4);
        let x = Tensor::normal(3, 64, 5.0, &mut rng);
        let gamma = vec![1.0; 64];
        let beta = vec![0.0; 64];
        let (y, _) = layernorm(&x, &gamma, &beta);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 64.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_backward_matches_numeric() {
        let mut rng = Rng::new(5);
        let x = Tensor::normal(2, 8, 1.5, &mut rng);
        let gamma: Vec<f32> = (0..8).map(|i| 0.5 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..8).map(|i| 0.05 * i as f32).collect();
        let w = Tensor::normal(2, 8, 1.0, &mut rng);
        let (_, stash) = layernorm(&x, &gamma, &beta);
        let (dx, dgamma, dbeta) = layernorm_backward(&stash, &gamma, &w);
        let numeric = num_grad(&x, &w, |t| layernorm(t, &gamma, &beta).0);
        assert!(
            dx.max_abs_diff(&numeric) < 3e-3,
            "{}",
            dx.max_abs_diff(&numeric)
        );
        // dβ = column sums of dy.
        for (c, &db) in dbeta.iter().enumerate() {
            let expect: f32 = (0..2).map(|r| w.get(r, c)).sum();
            assert!((db - expect).abs() < 1e-5);
        }
        // dγ numeric check on one coordinate.
        let eps = 1e-3;
        let mut gp = gamma.clone();
        gp[3] += eps;
        let mut gm = gamma.clone();
        gm[3] -= eps;
        let lp: f32 = layernorm(&x, &gp, &beta).0.hadamard(&w).data().iter().sum();
        let lm: f32 = layernorm(&x, &gm, &beta).0.hadamard(&w).data().iter().sum();
        assert!((dgamma[3] - (lp - lm) / (2.0 * eps)).abs() < 3e-3);
    }
}
