//! Top-level simulation entry points.

use chimera_core::schedule::Schedule;
use chimera_core::unit_time::{execute_with, ExecError, Timeline};

use crate::cost::SimCostModel;
use crate::memory;

/// Result of simulating one schedule under a cost model.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock time of the simulated span, seconds.
    pub span_s: f64,
    /// Per-iteration time, seconds (`span_s / iterations`).
    pub iter_time_s: f64,
    /// Bubble ratio (idle fraction averaged over workers).
    pub bubble_ratio: f64,
    /// Compute-busy seconds per worker.
    pub busy_s: Vec<f64>,
    /// Peak activation bytes per worker.
    pub peak_act_bytes: Vec<u64>,
    /// Static weight bytes per worker (params × versions + grad/opt state).
    pub weight_bytes: Vec<u64>,
    /// Peak total memory per worker.
    pub peak_mem_bytes: Vec<u64>,
    /// The executed timeline (tick = 1 ns).
    pub timeline: Timeline,
}

impl SimReport {
    /// Training throughput in samples/s for the whole job, given the
    /// mini-batch size `b_hat` consumed per iteration (across all `W`
    /// data-parallel groups).
    pub fn throughput(&self, b_hat: u64) -> f64 {
        b_hat as f64 / self.iter_time_s
    }

    /// Largest per-worker peak memory.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Whether the configuration fits in `capacity_bytes` per device.
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        memory::fits(&self.peak_mem_bytes, capacity_bytes)
    }
}

/// Simulate a single iteration of `sched` under `cost`.
pub fn simulate(sched: &Schedule, cost: &SimCostModel) -> Result<SimReport, ExecError> {
    simulate_span(sched, cost, 1)
}

/// Simulate a schedule that covers `iterations` training iterations (e.g. an
/// unrolled steady-state schedule of an asynchronous scheme) and report the
/// amortized per-iteration time.
pub fn simulate_span(
    sched: &Schedule,
    cost: &SimCostModel,
    iterations: u32,
) -> Result<SimReport, ExecError> {
    assert!(iterations >= 1);
    let timeline = execute_with(sched, cost)?;
    let span_s = SimCostModel::seconds(timeline.makespan);
    let busy_s = timeline
        .busy
        .iter()
        .map(|&b| SimCostModel::seconds(b))
        .collect();
    let peak_act_bytes: Vec<u64> = timeline
        .peak_activations
        .iter()
        .map(|&a| a.round() as u64)
        .collect();
    let weight_bytes = memory::weights_bytes(sched, cost);
    let peak_mem_bytes = memory::peak_memory_bytes(sched, cost, &timeline);
    Ok(SimReport {
        span_s,
        iter_time_s: span_s / iterations as f64,
        bubble_ratio: timeline.bubble_ratio(),
        busy_s,
        peak_act_bytes,
        weight_bytes,
        peak_mem_bytes,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::AllReduceAlgo;
    use crate::cost::StageCosts;
    use crate::network::{NetworkModel, Topology};
    use chimera_core::baselines::{dapple, gems, gpipe, pipedream_2bw_steady, pipedream_steady};
    use chimera_core::chimera::{chimera, ChimeraConfig};
    use chimera_core::schedule::SyncStrategy;
    use chimera_core::sync::place_sync;
    use chimera_core::unit_time::UnitCosts;

    fn cost(d: u32) -> SimCostModel {
        SimCostModel {
            stages: vec![
                StageCosts {
                    fwd_s: 10e-3,
                    bwd_s: 20e-3,
                    recompute_s: 10e-3,
                    boundary_bytes: 4 << 20,
                    act_bytes: 64 << 20,
                    param_bytes: 80 << 20,
                    grad_opt_bytes: 160 << 20,
                };
                d as usize
            ],
            network: NetworkModel::cray_aries(),
            topology: Topology::one_per_node(d),
            allreduce_participants: 16,
            allreduce_algo: AllReduceAlgo::Rabenseifner,
            allreduce_beta_factor: 1.0,
            launch_overhead_s: 0.2e-3,
            half_chunk_penalty: 1.15,
            comm_compute_interference: 0.0,
            p2p_host_overhead_s: 0.0,
            p2p_host_s_per_byte: 0.0,
            grad_compression: 1.0,
        }
    }

    /// Chimera beats DAPPLE and GPipe per iteration for N = D (the paper's
    /// central performance claim, driven by the halved bubble count).
    #[test]
    fn chimera_fastest_synchronous_at_n_eq_d() {
        let d = 8;
        let n = 8;
        let c = cost(d);
        let chim = simulate(
            &place_sync(
                chimera(&ChimeraConfig::new(d, n)).unwrap(),
                SyncStrategy::EagerOpt,
                UnitCosts::practical(),
            ),
            &c,
        )
        .unwrap();
        let dap = simulate(
            &place_sync(dapple(d, n), SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        let gp = simulate(
            &place_sync(gpipe(d, n), SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        let gm = simulate(
            &place_sync(gems(d, n), SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        assert!(chim.iter_time_s < dap.iter_time_s, "{} vs DAPPLE {}", chim.iter_time_s, dap.iter_time_s);
        assert!(chim.iter_time_s < gp.iter_time_s);
        assert!(chim.iter_time_s < gm.iter_time_s);
        // GEMS is the slowest synchronous scheme (highest bubble ratio).
        assert!(gm.iter_time_s > dap.iter_time_s);
    }

    /// Asynchronous PipeDream-2BW approaches the bubble-free iteration time;
    /// Chimera comes close (Fig. 14/15 show them within ~1.2x).
    #[test]
    fn chimera_close_to_async_steady_state() {
        let d = 4;
        let n = 4;
        let iters = 8;
        let c = cost(d);
        let bw = simulate_span(&pipedream_2bw_steady(d, n, iters), &c, iters).unwrap();
        let chim = simulate(
            &place_sync(
                chimera(&ChimeraConfig::new(d, n)).unwrap(),
                SyncStrategy::EagerOpt,
                UnitCosts::practical(),
            ),
            &c,
        )
        .unwrap();
        assert!(chim.iter_time_s < 1.6 * bw.iter_time_s);
    }

    /// PipeDream's per-micro blocking sync makes it slower than 2BW.
    #[test]
    fn per_micro_sync_hurts_pipedream() {
        let d = 4;
        let n = 4;
        let iters = 8;
        let c = cost(d);
        let pd = simulate_span(&pipedream_steady(d, n, iters), &c, iters).unwrap();
        let bw = simulate_span(&pipedream_2bw_steady(d, n, iters), &c, iters).unwrap();
        assert!(pd.iter_time_s > bw.iter_time_s);
    }

    #[test]
    fn throughput_and_fit_helpers() {
        let d = 4;
        let c = cost(d);
        let rep = simulate(&dapple(d, 4), &c).unwrap();
        let thr = rep.throughput(512);
        assert!((thr - 512.0 / rep.iter_time_s).abs() < 1e-9);
        assert!(rep.fits(u64::MAX));
        assert!(!rep.fits(1));
        assert!(rep.max_peak_mem() > 0);
    }

    /// Eager-opt is at least as fast as plain eager (Fig. 12: middle-stage
    /// eager launches cost overhead without overlap benefit).
    #[test]
    fn eager_opt_not_slower_than_eager() {
        let d = 8;
        let c = cost(d);
        let base = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let eager = simulate(
            &place_sync(base.clone(), SyncStrategy::Eager, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        let opt = simulate(
            &place_sync(base, SyncStrategy::EagerOpt, UnitCosts::practical()),
            &c,
        )
        .unwrap();
        assert!(opt.iter_time_s <= eager.iter_time_s + 1e-9);
    }
}
