//! Message-level fault injection on the transport send path.
//!
//! The runtime's `FaultSpec` drop/delay faults are compiled down to a
//! [`FaultInjection`] installed on the sending endpoint, so the *same*
//! injection machinery exercises every backend: a dropped frame over TCP
//! and a dropped crossbeam message produce identical receiver-side
//! timeouts. Faults are one-shot (the first matching send consumes them),
//! which keeps faulty runs exactly reproducible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chimera_trace::{now_ns, Event, MetricsRegistry, SpanEvent, SpanKind, TraceSink};

use crate::transport::MsgKey;

/// Identify one pipeline boundary message on an endpoint's send path by its
/// direction and global micro-batch id. Collective and control traffic is
/// never matched — faults target the p2p plane, as in the runtime's
/// original injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFault {
    /// `true` to match the backward (gradient) message, `false` the
    /// forward (activation) message.
    pub grad: bool,
    /// Global micro-batch id of the message.
    pub micro: u64,
}

impl SendFault {
    fn matches(&self, key: &MsgKey) -> Option<(u32, u32, u64)> {
        match *key {
            MsgKey::Act {
                replica,
                stage,
                micro,
            } if !self.grad && micro == self.micro => Some((replica, stage, micro)),
            MsgKey::Grad {
                replica,
                stage,
                micro,
            } if self.grad && micro == self.micro => Some((replica, stage, micro)),
            _ => None,
        }
    }
}

/// A deterministic send-path fault plan for one endpoint, with one-shot
/// firing state. Installed on a transport endpoint via its `set_fault`
/// method; the endpoint consults [`FaultInjection::on_send`] before moving
/// bytes.
#[derive(Default)]
pub struct FaultInjection {
    drop_msg: Option<SendFault>,
    delay_msg: Option<(SendFault, Duration)>,
    trace: Option<(Arc<dyn TraceSink>, u32)>,
    drop_fired: AtomicBool,
    delay_fired: AtomicBool,
}

impl std::fmt::Debug for FaultInjection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjection")
            .field("drop_msg", &self.drop_msg)
            .field("delay_msg", &self.delay_msg)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl FaultInjection {
    /// A plan combining an optional drop and an optional delay fault.
    pub fn new(drop_msg: Option<SendFault>, delay_msg: Option<(SendFault, Duration)>) -> Self {
        FaultInjection {
            drop_msg,
            delay_msg,
            ..FaultInjection::default()
        }
    }

    /// A plan that silently drops the first matching message.
    pub fn drop_msg(fault: SendFault) -> Self {
        FaultInjection {
            drop_msg: Some(fault),
            ..FaultInjection::default()
        }
    }

    /// A plan that delays the first matching message by `delay` before
    /// delivering it normally.
    pub fn delay_msg(fault: SendFault, delay: Duration) -> Self {
        FaultInjection {
            delay_msg: Some((fault, delay)),
            ..FaultInjection::default()
        }
    }

    /// Attach a trace sink: fired faults emit `SpanKind::Fault` spans
    /// (`drop m{micro}@s{stage}` / `delay m{micro}@s{stage}`) on `track`.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>, track: u32) -> Self {
        self.trace = Some((sink, track));
        self
    }

    /// True when neither fault is armed (nothing can ever fire).
    pub fn is_empty(&self) -> bool {
        self.drop_msg.is_none() && self.delay_msg.is_none()
    }

    /// Consult the plan for a message about to be sent under `key`.
    /// Returns `true` when the message must be **dropped**; a delay fault
    /// sleeps here on the sender and then lets the send proceed.
    pub fn on_send(&self, key: &MsgKey) -> bool {
        if let Some(dm) = &self.drop_msg {
            if let Some((replica, stage, micro)) = dm.matches(key) {
                if !self.drop_fired.swap(true, Ordering::Relaxed) {
                    MetricsRegistry::global()
                        .counter("runtime.fault.dropped_msgs")
                        .inc();
                    let at = now_ns();
                    self.span("drop", at, at, replica, stage, micro);
                    return true;
                }
            }
        }
        if let Some((dm, delay)) = &self.delay_msg {
            if let Some((replica, stage, micro)) = dm.matches(key) {
                if !self.delay_fired.swap(true, Ordering::Relaxed) {
                    MetricsRegistry::global()
                        .counter("runtime.fault.delayed_msgs")
                        .inc();
                    let start = now_ns();
                    std::thread::sleep(*delay);
                    self.span("delay", start, now_ns(), replica, stage, micro);
                }
            }
        }
        false
    }

    fn span(&self, verb: &str, start_ns: u64, end_ns: u64, replica: u32, stage: u32, micro: u64) {
        let Some((sink, track)) = &self.trace else {
            return;
        };
        sink.record(Event::Span(SpanEvent {
            kind: SpanKind::Fault,
            name: format!("{verb} m{micro}@s{stage}"),
            pid: 0,
            track: *track,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            stage: Some(stage),
            replica: Some(replica),
            micro: Some(micro),
            bytes: None,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(micro: u64) -> MsgKey {
        MsgKey::Act {
            replica: 0,
            stage: 1,
            micro,
        }
    }

    #[test]
    fn drop_is_one_shot_and_direction_selective() {
        let f = FaultInjection::drop_msg(SendFault {
            grad: false,
            micro: 3,
        });
        assert!(!f.on_send(&act(2)), "wrong micro passes");
        assert!(
            !f.on_send(&MsgKey::Grad {
                replica: 0,
                stage: 1,
                micro: 3
            }),
            "wrong direction passes"
        );
        assert!(f.on_send(&act(3)), "target is dropped");
        assert!(
            !f.on_send(&act(3)),
            "second matching send passes (one-shot)"
        );
    }

    #[test]
    fn delay_sleeps_then_delivers_once() {
        let f = FaultInjection::delay_msg(
            SendFault {
                grad: true,
                micro: 1,
            },
            Duration::from_millis(25),
        );
        let key = MsgKey::Grad {
            replica: 0,
            stage: 0,
            micro: 1,
        };
        let t0 = std::time::Instant::now();
        assert!(!f.on_send(&key), "delayed message still delivers");
        assert!(t0.elapsed() >= Duration::from_millis(25));
        let t1 = std::time::Instant::now();
        assert!(!f.on_send(&key));
        assert!(
            t1.elapsed() < Duration::from_millis(20),
            "delay is one-shot"
        );
    }

    #[test]
    fn collective_traffic_is_never_matched() {
        let f = FaultInjection::drop_msg(SendFault {
            grad: false,
            micro: 0,
        });
        assert!(!f.on_send(&MsgKey::Coll {
            tag: 0,
            round: 0,
            from: 0
        }));
        assert!(!f.on_send(&MsgKey::Ctrl { tag: 0, from: 0 }));
    }
}
