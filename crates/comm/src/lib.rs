#![warn(missing_docs)]

//! # chimera-comm
//!
//! The pluggable interconnect of the training runtime: a [`Transport`]
//! trait for **keyed, deadline-aware point-to-point messaging** between
//! pipeline workers, with two backends:
//!
//! * [`local`] — crossbeam channels inside one process, preserving the
//!   original zero-copy fast path (tensors move, they are never
//!   serialized);
//! * [`tcp`] — length-prefixed binary frames over `std::net` sockets, with
//!   a rendezvous protocol for rank assignment, bounded-backoff connect
//!   retry, and wire-byte counters flowing into the `chimera-trace`
//!   metrics registry. This is what lets a Chimera pipeline train across
//!   real OS process boundaries (the role GLOO plays in the paper's
//!   implementation, §4).
//!
//! Messages are addressed by [`MsgKey`] — (direction, replica, stage,
//! micro) for pipeline boundary tensors, (stage, round, sender) for
//! collective traffic — so receivers wait for *the message they need*
//! rather than the next one to arrive, regardless of network reordering.
//! Every blocking receive takes a deadline and fails with
//! [`CommError::Timeout`] instead of hanging on a dead peer.
//!
//! The transport layer also owns **message-level fault injection**
//! ([`FaultInjection`]): dropping or delaying one specific message on its
//! send path, uniformly for every backend. `chimera-runtime` builds its
//! recovery tests on top of this.
//!
//! For multi-process tracing, [`clock`] aligns every process's trace clock
//! to rank 0's via a probe/response rendezvous ([`rendezvous_epoch`]), so
//! per-rank trace exports share one time axis.

pub mod clock;
pub mod fault;
pub mod local;
pub mod modelcheck;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use clock::{rendezvous_epoch, ClockSync, EPOCH_TAG};
pub use fault::{FaultInjection, SendFault};
pub use local::{LocalEndpoint, LocalFabric};
pub use modelcheck::{explore, Exploration, StepOutcome};
pub use tcp::{TcpConfig, TcpEndpoint, TcpFabric};
pub use transport::{CommError, KeyedReduce, MsgKey, Payload, Rank, Transport};
