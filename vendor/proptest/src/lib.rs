//! Offline stub of `proptest`: deterministic sampling from range strategies,
//! no shrinking, no persistence. `proptest! { ... }` expands each test into a
//! plain `#[test]` loop over seeded samples, so property tests still explore
//! many cases per run — just reproducibly.

/// Strategy types: what can appear on the right of `name in <strategy>`.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of sampled values.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty strategy range");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! int_range_incl_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end() - self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_incl_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64 - self.start as i64) as u64;
                    assert!(span > 0, "empty strategy range");
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i64, i32, i16, i8);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Fixed-choice strategy over a small array (e.g. `prop_oneof` stand-in).
    impl<T: Clone, const N: usize> Strategy for [T; N] {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self[(rng.next_u64() % N as u64) as usize].clone()
        }
    }
}

/// Test-runner types: config, RNG, and the error carried by `prop_assert!`.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` samples per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic xorshift64* RNG seeded from the test name.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from an arbitrary string (the generated tests use their own
        /// name, so each test gets a distinct but reproducible stream).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h })
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests; see module docs for stub semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    let args: ::std::vec::Vec<::std::string::String> = ::std::vec![
                        $(::std::format!("{}={:?}", stringify!($arg), $arg)),*
                    ];
                    ::std::panic!(
                        "property failed on case {} [{}]: {}",
                        case,
                        args.join(", "),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assert_eq failed: {:?} != {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 1usize..7, x in -5.0f32..5.0, s in 0u64..1000) {
            prop_assert!((1..7).contains(&n));
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(s < 1000, "s={}", s);
        }

        /// Equality macro with and without message compiles and passes.
        #[test]
        fn eq_macros(a in 0u64..10) {
            prop_assert_eq!(a, a);
            prop_assert_eq!(a.clone(), a.clone(), "copies differ (a={})", a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
