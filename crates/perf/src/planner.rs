//! Configuration planning: the (W, D, B) searches of §4.2.
//!
//! For the baselines the best configuration "is not obvious a priori"
//! (Figs. 10/11) and requires a grid search; Chimera instead greedily takes
//! the largest micro-batch that fits memory and lets the §3.4 performance
//! model pick (W, D).

use std::time::Instant;

use chimera_core::baselines::{dapple, gems, gpipe, pipedream_2bw_steady, pipedream_steady};
use chimera_core::chimera::{chimera, ChimeraConfig, ScaleMethod};
use chimera_core::schedule::{Schedule, Scheme, SyncStrategy};
use chimera_core::sync::place_sync;
use chimera_core::unit_time::UnitCosts;
use chimera_sim::{simulate_span, SimCostModel, SimReport};
use chimera_verify::{memory_v2, verify_span};

use crate::costs::{ClusterSpec, TrainConfig};
use crate::eq1;
use crate::model::ModelSpec;

/// Which scheme to plan for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanScheme {
    /// Chimera with `f` pipeline pairs and a §3.5 scaling method.
    Chimera {
        /// Pipeline pairs.
        f: u32,
        /// N > D strategy.
        scale: ScaleMethod,
    },
    /// GPipe.
    GPipe,
    /// DAPPLE.
    Dapple,
    /// GEMS.
    Gems,
    /// PipeDream (asynchronous; ignores `b_hat`, its mini-batch is `W·B`).
    PipeDream,
    /// PipeDream-2BW (asynchronous).
    PipeDream2Bw,
}

impl PlanScheme {
    /// The Table-2 scheme tag.
    pub fn scheme(&self) -> Scheme {
        match self {
            PlanScheme::Chimera { .. } => Scheme::Chimera,
            PlanScheme::GPipe => Scheme::GPipe,
            PlanScheme::Dapple => Scheme::Dapple,
            PlanScheme::Gems => Scheme::Gems,
            PlanScheme::PipeDream => Scheme::PipeDream,
            PlanScheme::PipeDream2Bw => Scheme::PipeDream2Bw,
        }
    }

    /// Display name with Chimera variants spelled out.
    pub fn label(&self) -> String {
        match self {
            PlanScheme::Chimera { f, scale } => {
                let scale = match scale {
                    ScaleMethod::Direct => "direct",
                    ScaleMethod::ForwardDoubling { .. } => "fwd-doubling",
                    ScaleMethod::BackwardHalving => "bwd-halving",
                };
                if *f == 1 {
                    format!("Chimera ({scale})")
                } else {
                    format!("Chimera-{}x ({scale})", 2 * f)
                }
            }
            other => other.scheme().name().to_string(),
        }
    }
}

/// Result of evaluating one `(W, D, B)` candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Scheme evaluated.
    pub scheme: PlanScheme,
    /// Data-parallel width.
    pub w: u32,
    /// Pipeline depth.
    pub d: u32,
    /// Micro-batch size.
    pub b: u32,
    /// Micro-batches per worker per iteration.
    pub n: u32,
    /// Whether activation recomputation was needed to fit memory.
    pub recompute: bool,
    /// Whether the configuration fits device memory even with recomputation,
    /// judged by the exact liveness peak (`memory/v2`), not the coarse
    /// Table-2 bound — asynchronous schemes gain real headroom from this.
    pub fits: bool,
    /// Simulated per-iteration time (for `b_hat` samples), seconds.
    pub iter_time_s: f64,
    /// Throughput in samples/s.
    pub throughput: f64,
    /// Largest per-worker peak memory, bytes — the exact static peak from
    /// the liveness dataflow engine.
    pub peak_mem: u64,
    /// Bubble ratio of the simulated span.
    pub bubble_ratio: f64,
    /// Eq. 1 prediction (Chimera only), seconds per iteration.
    pub predicted_s: Option<f64>,
    /// The effective mini-batch size this candidate trains with.
    pub b_hat: u64,
}

/// Steady-state iterations simulated for the asynchronous schemes.
const ASYNC_ITERS: u32 = 6;

/// Build the (synchronous) schedule for a candidate; async schemes return
/// their unrolled steady-state schedule and the iteration count it covers.
fn build_schedule(scheme: PlanScheme, d: u32, n: u32) -> Option<(Schedule, u32)> {
    match scheme {
        PlanScheme::Chimera { f, scale } => {
            if !d.is_multiple_of(2) || !(d / 2).is_multiple_of(f) {
                return None;
            }
            let sched = chimera(&ChimeraConfig { d, n, f, scale }).ok()?;
            Some((sched, 1))
        }
        PlanScheme::GPipe => Some((gpipe(d, n), 1)),
        PlanScheme::Dapple => Some((dapple(d, n), 1)),
        PlanScheme::Gems => {
            if !d.is_multiple_of(2) || n < 2 || !n.is_multiple_of(2) {
                return None;
            }
            Some((gems(d, n), 1))
        }
        PlanScheme::PipeDream => Some((pipedream_steady(d, n, ASYNC_ITERS), ASYNC_ITERS)),
        PlanScheme::PipeDream2Bw => {
            // 2BW needs gradient accumulation over at least D micro-batches
            // (Table 2 footnote) and recomputes activations by default —
            // every best configuration in Figs. 10/11 carries the "R" flag.
            if n < d {
                return None;
            }
            Some((
                pipedream_2bw_steady(d, n, ASYNC_ITERS).with_recompute(),
                ASYNC_ITERS,
            ))
        }
    }
}

/// Evaluate one `(W, D, B)` candidate for `scheme` training `model` on
/// `cluster` with `p` workers and mini-batch `b_hat`. Returns `None` for
/// structurally invalid combinations (non-divisible, scheme constraints).
#[allow(clippy::too_many_arguments)] // mirrors the paper's tuning dimensions
pub fn evaluate(
    scheme: PlanScheme,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
    w: u32,
    d: u32,
    b: u32,
) -> Option<Candidate> {
    if w * d != p || d < 2 || b == 0 {
        return None;
    }
    // PipeDream updates per micro-batch: its mini-batch is W·B and N is the
    // pipeline occupancy (D micros in flight), not b_hat-driven.
    let (n, eff_b_hat) = if scheme == PlanScheme::PipeDream {
        (d, (w as u64) * (b as u64))
    } else {
        let denom = (w as u64) * (b as u64);
        if !b_hat.is_multiple_of(denom) {
            return None;
        }
        let n = (b_hat / denom) as u32;
        if n == 0 {
            return None;
        }
        (n, b_hat)
    };

    let (base, iters) = build_schedule(scheme, d, n)?;
    let stage_replicas = base.placement.replicas();
    let cfg = TrainConfig {
        model,
        cluster,
        d,
        w,
        b,
        stage_replicas,
    };
    let cost = cfg.cost_model();

    let synced = if base.flushes {
        place_sync(base, SyncStrategy::EagerOpt, UnitCosts::practical())
    } else {
        base
    };

    let run = |sched: &Schedule| simulate_span(sched, &cost, iters).ok();
    let mut recompute = false;
    let mut sched = synced.clone();
    let mut report: SimReport = run(&sched)?;
    // Fit is judged by the exact liveness peak, which is never above the
    // coarse Table-2 bound — so the planner admits every configuration the
    // old bound admitted, plus the ones the bound's slack was rejecting
    // (PipeDream-2BW carries ~25-30% slack from refcounted weight versions).
    let mut mem = memory_v2(&sched, &cost);
    // Retry with activation recomputation (the paper's "R" label; Fig. 1
    // shows even PipeDream running with R in the authors' harness).
    // PipeDream's mini-batch size stays capped regardless: its weight
    // stashing (up to D parameter versions on stage 0) dominates memory.
    if !mem.fits(cluster.usable_mem()) && !already_recomputes(&sched) {
        sched = synced.with_recompute();
        recompute = true;
        report = run(&sched)?;
        mem = memory_v2(&sched, &cost);
    }
    let fits = mem.fits(cluster.usable_mem());
    assert_verified(&sched, iters);

    // Per-iteration time normalized to b_hat samples.
    let samples_per_span = sched.n as u64 * b as u64 * w as u64;
    let throughput = samples_per_span as f64 / report.span_s;
    let iter_time_s = eff_b_hat as f64 / throughput;
    let predicted_s = match scheme {
        PlanScheme::Chimera { .. } => Some(eq1::predict(&sched, &cost).t_iter_s),
        _ => None,
    };

    Some(Candidate {
        scheme,
        w,
        d,
        b,
        n,
        recompute: recompute || already_recomputes(&sched),
        fits,
        iter_time_s,
        throughput,
        peak_mem: mem.max_exact_peak(),
        bubble_ratio: report.bubble_ratio,
        predicted_s,
        b_hat: eff_b_hat,
    })
}

fn already_recomputes(sched: &Schedule) -> bool {
    sched.iter_ops().any(|(_, _, op)| op.recomputes())
}

/// Every schedule the planner hands out must pass static verification: a
/// deadlocked or hazardous candidate would only fail later, inside a
/// benchmark or a multi-process run, where the diagnosis is far worse.
fn assert_verified(sched: &Schedule, iters: u32) {
    let report = verify_span(sched, iters);
    assert!(
        report.is_clean(),
        "planner produced an invalid {} schedule (D={} N={}):\n{report}",
        sched.scheme,
        sched.d,
        sched.n
    );
}

/// Rebuild the exact schedule, cost model and span iteration count a
/// [`Candidate`] was evaluated with — e.g. to re-execute the winning
/// configuration and export its timeline as a trace. Returns `None` only if
/// the candidate's parameters no longer build (which would indicate it was
/// not produced by [`evaluate`]).
pub fn rebuild(
    c: &Candidate,
    model: ModelSpec,
    cluster: ClusterSpec,
) -> Option<(Schedule, SimCostModel, u32)> {
    let (base, iters) = build_schedule(c.scheme, c.d, c.n)?;
    let stage_replicas = base.placement.replicas();
    let cfg = TrainConfig {
        model,
        cluster,
        d: c.d,
        w: c.w,
        b: c.b,
        stage_replicas,
    };
    let cost = cfg.cost_model();
    let mut sched = if base.flushes {
        place_sync(base, SyncStrategy::EagerOpt, UnitCosts::practical())
    } else {
        base
    };
    if c.recompute && !already_recomputes(&sched) {
        sched = sched.with_recompute();
    }
    assert_verified(&sched, iters);
    Some((sched, cost, iters))
}

/// Pipeline depths worth trying for `p` workers and `model`.
pub fn depth_candidates(p: u32, model: &ModelSpec) -> Vec<u32> {
    (1..=6)
        .map(|e| 1u32 << e) // 2, 4, ..., 64
        .filter(|&d| p.is_multiple_of(d) && d <= p && d <= model.layers)
        .collect()
}

/// Micro-batch sizes worth trying (powers of two up to 32, with `N ≥ 1`).
pub fn batch_candidates(b_hat: u64, w: u32) -> Vec<u32> {
    (0..=5)
        .map(|e| 1u32 << e)
        .filter(|&b| (b as u64) * (w as u64) <= b_hat)
        .collect()
}

/// A budgeted search ran out of time before covering its grid. The partial
/// result is withheld — a "best" configuration from a truncated sweep would
/// silently depend on grid iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchTimeout;

impl std::fmt::Display for SearchTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule-space search hit its deadline")
    }
}

impl std::error::Error for SearchTimeout {}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Grid-search all `(W, D, B)` combinations (Figs. 10/11). Returns all
/// valid, memory-fitting candidates sorted by descending throughput.
pub fn sweep(
    scheme: PlanScheme,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
) -> Vec<Candidate> {
    sweep_until(scheme, model, cluster, p, b_hat, None).expect("no deadline")
}

/// [`sweep`] with a wall-clock budget: the deadline is checked before each
/// candidate evaluation (the per-candidate simulation is the unit of work),
/// and hitting it mid-grid aborts the whole search with [`SearchTimeout`].
pub fn sweep_until(
    scheme: PlanScheme,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
    deadline: Option<Instant>,
) -> Result<Vec<Candidate>, SearchTimeout> {
    let mut out = Vec::new();
    for d in depth_candidates(p, &model) {
        let w = p / d;
        for b in batch_candidates(b_hat, w) {
            if expired(deadline) {
                return Err(SearchTimeout);
            }
            if let Some(c) = evaluate(scheme, model, cluster, p, b_hat, w, d, b) {
                if c.fits {
                    out.push(c);
                }
            }
        }
    }
    if scheme == PlanScheme::PipeDream {
        // The paper's policy: PipeDream runs "the maximum B̂ fitting in the
        // device memory" — maximize its W·B mini-batch first, then
        // throughput. Without this its throughput-best configurations
        // collapse to degenerate tiny mini-batches (W = 1).
        out.sort_by(|a, b| {
            b.b_hat
                .cmp(&a.b_hat)
                .then(b.throughput.partial_cmp(&a.throughput).unwrap())
        });
    } else {
        out.sort_by(|a, b| b.throughput.partial_cmp(&a.throughput).unwrap());
    }
    Ok(out)
}

/// Best configuration from a [`sweep`], if any fits.
pub fn best(
    scheme: PlanScheme,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
) -> Option<Candidate> {
    sweep(scheme, model, cluster, p, b_hat).into_iter().next()
}

/// [`best`] with a wall-clock budget (see [`sweep_until`]).
pub fn best_until(
    scheme: PlanScheme,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
    deadline: Option<Instant>,
) -> Result<Option<Candidate>, SearchTimeout> {
    Ok(sweep_until(scheme, model, cluster, p, b_hat, deadline)?
        .into_iter()
        .next())
}

/// Chimera's planning procedure (§3.4/§4.2.2): per feasible (W, D) pick the
/// micro-batch size, then the (W, D), by the best Eq. 1 prediction.
///
/// The paper greedily takes the largest `B` fitting memory; in its regime
/// (B̂ ≫ P) that also keeps `N ≥ D`. When `B̂ ≈ P` the greedy choice would
/// collapse to `N = 1` and reopen the bubble/efficiency trade-off, so we let
/// the same §3.4 model that ranks (W, D) also rank `B` — the tuning space
/// stays tiny compared with the baselines' full grid.
/// ```
/// use chimera_core::chimera::ScaleMethod;
/// use chimera_perf::planner::plan_chimera;
/// use chimera_perf::{ClusterSpec, ModelSpec};
///
/// let plan = plan_chimera(
///     1,
///     ScaleMethod::Direct,
///     ModelSpec::bert48(),
///     ClusterSpec::piz_daint(),
///     8,   // workers
///     64,  // mini-batch size
/// )
/// .unwrap();
/// assert_eq!(plan.w * plan.d, 8);
/// assert!(plan.fits && plan.throughput > 0.0);
/// ```
pub fn plan_chimera(
    f: u32,
    scale: ScaleMethod,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
) -> Option<Candidate> {
    plan_chimera_until(f, scale, model, cluster, p, b_hat, None).expect("no deadline")
}

/// [`plan_chimera`] with a wall-clock budget (see [`sweep_until`]).
#[allow(clippy::too_many_arguments)] // plan_chimera's dimensions + a deadline
pub fn plan_chimera_until(
    f: u32,
    scale: ScaleMethod,
    model: ModelSpec,
    cluster: ClusterSpec,
    p: u32,
    b_hat: u64,
    deadline: Option<Instant>,
) -> Result<Option<Candidate>, SearchTimeout> {
    let scheme = PlanScheme::Chimera { f, scale };
    let mut per_wd: Vec<Candidate> = Vec::new();
    for d in depth_candidates(p, &model) {
        let w = p / d;
        let mut chosen: Option<Candidate> = None;
        for b in batch_candidates(b_hat, w) {
            if expired(deadline) {
                return Err(SearchTimeout);
            }
            let Some(c) = evaluate(scheme, model, cluster, p, b_hat, w, d, b) else {
                continue;
            };
            if !c.fits {
                continue;
            }
            let better = chosen.as_ref().is_none_or(|cur| {
                c.predicted_s.unwrap_or(f64::INFINITY) < cur.predicted_s.unwrap_or(f64::INFINITY)
            });
            if better {
                chosen = Some(c);
            }
        }
        if let Some(c) = chosen {
            per_wd.push(c);
        }
    }
    // Model-driven selection: minimize the Eq. 1 prediction.
    Ok(per_wd.into_iter().min_by(|a, b| {
        a.predicted_s
            .unwrap_or(f64::INFINITY)
            .partial_cmp(&b.predicted_s.unwrap_or(f64::INFINITY))
            .unwrap()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_setup() -> (ModelSpec, ClusterSpec) {
        (ModelSpec::bert48(), ClusterSpec::piz_daint())
    }

    #[test]
    fn depth_and_batch_candidates() {
        let (m, _) = bert_setup();
        assert_eq!(depth_candidates(32, &m), vec![2, 4, 8, 16, 32]);
        assert_eq!(depth_candidates(48, &m), vec![2, 4, 8, 16]);
        assert_eq!(batch_candidates(512, 8), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(batch_candidates(16, 8), vec![1, 2]);
    }

    #[test]
    fn evaluate_rejects_invalid() {
        let (m, c) = bert_setup();
        assert!(evaluate(PlanScheme::Dapple, m, c, 32, 512, 4, 4, 4).is_none()); // W*D != P
        assert!(evaluate(PlanScheme::Dapple, m, c, 32, 512, 8, 4, 3).is_none()); // not divisible
        assert!(evaluate(
            PlanScheme::Chimera {
                f: 1,
                scale: ScaleMethod::Direct
            },
            m,
            c,
            32,
            512,
            16,
            2,
            2
        )
        .is_some());
    }

    /// The paper's Fig. 10 headline: DAPPLE's and GPipe's best configuration
    /// for Bert-48 on 32 nodes is (W=8, D=4, B=4); our reproduction must at
    /// least put a mid-depth, mid-batch configuration on top rather than an
    /// extreme one.
    #[test]
    fn dapple_sweep_prefers_interior_point() {
        let (m, c) = bert_setup();
        let all = sweep(PlanScheme::Dapple, m, c, 32, 512);
        assert!(!all.is_empty());
        let best = &all[0];
        assert!(best.d >= 2 && best.d <= 16, "best D = {}", best.d);
        assert!(best.b >= 2, "best B = {}", best.b);
    }

    #[test]
    fn chimera_planner_returns_config() {
        let (m, c) = bert_setup();
        let plan = plan_chimera(1, ScaleMethod::Direct, m, c, 32, 256).unwrap();
        assert!(plan.fits);
        assert!(plan.predicted_s.is_some());
        assert!(plan.throughput > 0.0);
    }

    /// Chimera's best beats DAPPLE's best (the paper's central comparison).
    #[test]
    fn chimera_beats_dapple_at_32_nodes() {
        let (m, c) = bert_setup();
        let chim = plan_chimera(1, ScaleMethod::Direct, m, c, 32, 512).unwrap();
        let dap = best(PlanScheme::Dapple, m, c, 32, 512).unwrap();
        assert!(
            chim.throughput > dap.throughput,
            "Chimera {:.1} vs DAPPLE {:.1} samples/s",
            chim.throughput,
            dap.throughput
        );
    }

    #[test]
    fn rebuild_reproduces_the_evaluated_schedule() {
        let (m, c) = bert_setup();
        for cand in [
            evaluate(PlanScheme::Dapple, m, c, 32, 512, 8, 4, 4).unwrap(),
            plan_chimera(1, ScaleMethod::Direct, m, c, 32, 256).unwrap(),
            evaluate(PlanScheme::PipeDream2Bw, m, c, 32, 512, 8, 4, 2).unwrap(),
        ] {
            let (sched, cost, iters) = rebuild(&cand, m, c).unwrap();
            let rep = simulate_span(&sched, &cost, iters).unwrap();
            assert!(
                (rep.bubble_ratio - cand.bubble_ratio).abs() < 1e-12,
                "{:?}: bubble {} vs {}",
                cand.scheme,
                rep.bubble_ratio,
                cand.bubble_ratio
            );
            let mem = memory_v2(&sched, &cost);
            assert_eq!(mem.max_exact_peak(), cand.peak_mem);
            // The simulator's coarse bound must stay an upper bound on the
            // exact peak the planner now prunes with.
            assert!(rep.max_peak_mem() >= cand.peak_mem);
        }
    }

    #[test]
    fn budgeted_search_times_out_and_unbudgeted_agrees() {
        let (m, c) = bert_setup();
        // An already-expired deadline aborts before evaluating anything.
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            sweep_until(PlanScheme::Dapple, m, c, 32, 512, Some(past)).err(),
            Some(SearchTimeout)
        );
        assert_eq!(
            plan_chimera_until(1, ScaleMethod::Direct, m, c, 32, 256, Some(past)).err(),
            Some(SearchTimeout)
        );
        // A generous deadline returns exactly the unbudgeted result.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let budgeted = best_until(PlanScheme::Dapple, m, c, 32, 512, Some(far))
            .unwrap()
            .unwrap();
        let plain = best(PlanScheme::Dapple, m, c, 32, 512).unwrap();
        assert_eq!(
            (budgeted.w, budgeted.d, budgeted.b),
            (plain.w, plain.d, plain.b)
        );
        let chim = plan_chimera_until(1, ScaleMethod::Direct, m, c, 32, 256, Some(far))
            .unwrap()
            .unwrap();
        let chim_plain = plan_chimera(1, ScaleMethod::Direct, m, c, 32, 256).unwrap();
        assert_eq!(
            (chim.w, chim.d, chim.b),
            (chim_plain.w, chim_plain.d, chim_plain.b)
        );
    }

    #[test]
    fn gems_requires_even_pairs() {
        let (m, c) = bert_setup();
        // N = 512 / (16*32) = 1 -> GEMS invalid.
        assert!(evaluate(PlanScheme::Gems, m, c, 32, 512, 16, 2, 32).is_none());
    }

    #[test]
    fn pipedream_ignores_b_hat() {
        let (m, c) = bert_setup();
        let cand = evaluate(PlanScheme::PipeDream, m, c, 32, 512, 8, 4, 2).unwrap();
        assert_eq!(cand.b_hat, 16); // W * B
        assert_eq!(cand.n, 4); // D micros in flight
    }
}
