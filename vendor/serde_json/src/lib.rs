//! Offline stub of `serde_json`: `Value`, a `json!` macro, a JSON parser and
//! printers, and `to_value`/`to_string` bridges over the `serde` stub.
//!
//! Semantics follow real serde_json where the workspace depends on them:
//! object keys are sorted (BTreeMap-backed `Map`), integer `Number`s compare
//! equal across signedness when numerically equal, and floats never compare
//! equal to integers.

use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Serialization / parse error.
pub struct Error(String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Number
// ---------------------------------------------------------------------------

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative (or any signed) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Value as `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// Value as `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }

    /// Value as `f64` (always succeeds for finite numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(v) => Some(v as f64),
            Number::I(v) => Some(v as f64),
            Number::F(v) => Some(v),
        }
    }

    /// From a finite `f64`; `None` for NaN / infinities.
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number::F(v))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            (Number::U(a), Number::I(b)) | (Number::I(b), Number::U(a)) => {
                b >= 0 && a == b as u64
            }
            // Ints and floats are never equal, as in real serde_json.
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip Display; integral floats lose
                    // the ".0" (they re-parse as integers with equal as_f64).
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// A JSON object: string keys to values, sorted by key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value>(BTreeMap<K, V>);

impl Map<String, Value> {
    /// An empty object.
    pub fn new() -> Self {
        Map(BTreeMap::new())
    }

    /// Insert, returning any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.0.insert(key, value)
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.0.get_mut(key)
    }

    /// Remove by key.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.0.remove(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, String, Value> {
        self.0.iter()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, String, Value> {
        self.0.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> std::collections::btree_map::Values<'_, String, Value> {
        self.0.values()
    }

    fn entry_or_null(&mut self, key: &str) -> &mut Value {
        self.0.entry(key.to_string()).or_insert(Value::Null)
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map(iter.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` view of an integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` view of an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array view.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object view.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Pretty rendering with two-space indentation.
    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&PAD.repeat(indent + 1));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&PAD.repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry_or_null(key),
            other => panic!("cannot index non-object value {other} by string"),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            other => panic!("cannot index non-array value {other} by position"),
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Serialize bridge (Value <- any Serialize, Value -> text)
// ---------------------------------------------------------------------------

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::U(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::I(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::F(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(a) => {
                use serde::ser::SerializeSeq;
                let mut seq = serializer.serialize_seq(Some(a.len()))?;
                for v in a {
                    seq.serialize_element(v)?;
                }
                seq.end()
            }
            Value::Object(m) => {
                use serde::ser::SerializeMap;
                let mut map = serializer.serialize_map(Some(m.len()))?;
                for (k, v) in m {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}

struct ValueSerializer;

#[doc(hidden)]
pub struct SeqBuilder(Vec<Value>);

impl serde::ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: ?Sized + serde::Serialize>(
        &mut self,
        value: &T,
    ) -> Result<(), Error> {
        self.0.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

#[doc(hidden)]
pub struct MapBuilder(Map);

impl serde::ser::SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: ?Sized + serde::Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.0.insert(key.to_string(), value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl serde::ser::SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: ?Sized + serde::Serialize, V: ?Sized + serde::Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match key.serialize(ValueSerializer)? {
            Value::String(s) => s,
            Value::Number(n) => n.to_string(),
            other => {
                return Err(serde::ser::Error::custom(format!(
                    "map key must be a string, got {other}"
                )))
            }
        };
        self.0.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeStruct = MapBuilder;
    type SerializeSeq = SeqBuilder;
    type SerializeMap = MapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::I(v)))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::U(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Number::from_f64(v).map_or(Value::Null, Value::Number))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: ?Sized + serde::Serialize>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<MapBuilder, Error> {
        Ok(MapBuilder(Map::new()))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder(Map::new()))
    }
}

/// Convert any `Serialize` value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Compact JSON text for any `Serialize` value.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(to_value(value)?.to_string())
}

/// Pretty (two-space indented) JSON text for any `Serialize` value.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    v.write_pretty(&mut out, 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    debug_assert_eq!(s.as_bytes()[0], b);
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok(Value::Number(Number::F(v)))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::Number(Number::I(v))),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| self.err("bad number"))?;
                    Ok(Value::Number(Number::F(v)))
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Value::Number(Number::U(v))),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| self.err("bad number"))?;
                    Ok(Value::Number(Number::F(v)))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal; non-literal positions accept
/// any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_arr!(vec $($tt)*);
        $crate::Value::Array(vec)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_obj!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

/// Internal `json!` helper: object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_obj {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident , $($rest:tt)+) => { $crate::json_obj!($map $($rest)+); };
    ($map:ident $key:literal : { $($v:tt)* } $($rest:tt)*) => {
        $map.insert($key.into(), $crate::json!({ $($v)* }));
        $crate::json_obj!($map $($rest)*);
    };
    ($map:ident $key:literal : [ $($v:tt)* ] $($rest:tt)*) => {
        $map.insert($key.into(), $crate::json!([ $($v)* ]));
        $crate::json_obj!($map $($rest)*);
    };
    ($map:ident $key:literal : null $($rest:tt)*) => {
        $map.insert($key.into(), $crate::Value::Null);
        $crate::json_obj!($map $($rest)*);
    };
    ($map:ident $key:literal : $v:expr , $($rest:tt)*) => {
        $map.insert($key.into(), $crate::json!($v));
        $crate::json_obj!($map $($rest)*);
    };
    ($map:ident $key:literal : $v:expr) => {
        $map.insert($key.into(), $crate::json!($v));
    };
}

/// Internal `json!` helper: array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_arr {
    ($vec:ident) => {};
    ($vec:ident ,) => {};
    ($vec:ident , $($rest:tt)+) => { $crate::json_arr!($vec $($rest)+); };
    ($vec:ident { $($v:tt)* } $($rest:tt)*) => {
        $vec.push($crate::json!({ $($v)* }));
        $crate::json_arr!($vec $($rest)*);
    };
    ($vec:ident [ $($v:tt)* ] $($rest:tt)*) => {
        $vec.push($crate::json!([ $($v)* ]));
        $crate::json_arr!($vec $($rest)*);
    };
    ($vec:ident null $($rest:tt)*) => {
        $vec.push($crate::Value::Null);
        $crate::json_arr!($vec $($rest)*);
    };
    ($vec:ident $v:expr , $($rest:tt)*) => {
        $vec.push($crate::json!($v));
        $crate::json_arr!($vec $($rest)*);
    };
    ($vec:ident $v:expr) => {
        $vec.push($crate::json!($v));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "worker 3".to_string();
        let start_ns: u64 = 1500;
        let v = json!({
            "ph": "X",
            "name": name,
            "ts": start_ns as f64 / 1e3,
            "stage": 2,
            "nested": {"a": [1, 2, 3], "b": null},
            "flag": true,
        });
        assert_eq!(v["ph"], json!("X"));
        assert_eq!(v["name"].as_str().unwrap(), "worker 3");
        assert_eq!(v["ts"].as_f64().unwrap(), 1.5);
        assert_eq!(v["stage"], json!(2));
        assert_eq!(v["nested"]["a"].as_array().unwrap().len(), 3);
        assert!(v["nested"]["b"].is_null());
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({"a": 1, "b": [true, null, "x\n\"y\""], "c": 2.5, "d": -7});
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(back["a"].as_u64(), Some(1));
        assert_eq!(back["b"].as_array().unwrap().len(), 3);
        assert_eq!(back["b"][2].as_str(), Some("x\n\"y\""));
        assert_eq!(back["c"].as_f64(), Some(2.5));
        assert_eq!(back["d"].as_i64(), Some(-7));
    }

    #[test]
    fn number_equality_semantics() {
        // Unsigned and signed integers compare equal when numerically equal.
        assert_eq!(json!(3u64), json!(3i32));
        // Integers and floats never compare equal.
        assert_ne!(json!(1u64), json!(1.0));
        assert_eq!(json!(1.5), json!(1.5));
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = json!({"a": 1});
        v["b"] = json!("x");
        assert_eq!(v["b"].as_str(), Some("x"));
        let mut fresh = Value::Null;
        fresh["k"] = json!(2);
        assert_eq!(fresh["k"].as_u64(), Some(2));
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let v = json!({"outer": {"inner": [1, 2]}, "s": "t"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn to_value_maps_and_tuples() {
        let pairs: Vec<(u64, u64)> = vec![(0, 1), (4, 2)];
        let v = to_value(&pairs).unwrap();
        assert_eq!(v[0][0].as_u64(), Some(0));
        assert_eq!(v[1][1].as_u64(), Some(2));
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(to_value(&m).unwrap()["k"].as_u64(), Some(9));
    }
}
