//! The combined profile report: bubble attribution + critical path +
//! optional drift-vs-simulation and comm-model residuals, serialisable as
//! a stable JSON schema (`chimera-obs/profile/v1`) and printable for
//! humans.

use std::fmt;

use chimera_trace::Event;

use crate::critical::{critical_path, CriticalPath};
use crate::drift::{CommFit, CommResiduals, DriftReport};
use crate::timeline::{analyze, TraceAnalysis};

/// How many critical-path ops the JSON/text report lists.
const TOP_K: usize = 10;

/// Everything the profiler learned from one trace.
#[derive(Debug)]
pub struct ProfileReport {
    /// Per-rank and aggregate time attribution.
    pub analysis: TraceAnalysis,
    /// Longest dependency chain through the executed spans.
    pub critical: CriticalPath,
    /// Predicted-vs-actual drift, when a simulation reference was given.
    pub drift: Option<DriftReport>,
    /// α-β comm-model residuals, one entry per fitted link that matched.
    pub residuals: Vec<CommResiduals>,
}

/// Profile `events`, optionally attaching `drift` computed by the caller.
pub fn profile(events: &[Event], drift: Option<DriftReport>) -> ProfileReport {
    ProfileReport {
        analysis: analyze(events),
        critical: critical_path(events),
        drift,
        residuals: Vec::new(),
    }
}

impl ProfileReport {
    /// Attach comm residuals for each fit that has sized P2p spans.
    pub fn with_residuals(mut self, events: &[Event], fits: &[CommFit]) -> ProfileReport {
        self.residuals = fits
            .iter()
            .filter_map(|f| crate::drift::comm_residuals(events, f))
            .collect();
        self
    }

    /// The report as JSON, schema `chimera-obs/profile/v1`.
    pub fn to_json(&self) -> serde_json::Value {
        let a = &self.analysis;
        let window_ns = a.window_ns();
        let lanes: Vec<serde_json::Value> = a
            .lanes
            .iter()
            .map(|l| {
                let b = &l.breakdown;
                serde_json::json!({
                    "pid": l.pid,
                    "track": l.track,
                    "spans": l.spans,
                    "breakdown_ns": breakdown_json(b),
                    "bubble_ratio": b.bubble_ratio(),
                })
            })
            .collect();
        let top: Vec<serde_json::Value> = self
            .critical
            .top_ops(TOP_K)
            .iter()
            .map(|o| {
                serde_json::json!({
                    "name": o.name,
                    "pid": o.pid,
                    "track": o.track,
                    "kind": o.kind.label(),
                    "start_ns": o.start_ns,
                    "dur_ns": o.dur_ns,
                    "crit_ns": o.crit_ns,
                })
            })
            .collect();
        let mut doc = serde_json::json!({
            "schema": "chimera-obs/profile/v1",
            "window_ns": window_ns,
            "attributed_fraction": a.attributed_fraction(),
            "aggregate": {
                "breakdown_ns": breakdown_json(&a.aggregate),
                "bubble_ratio": a.bubble_ratio(),
            },
            "lanes": lanes,
            "critical_path": {
                "total_ns": self.critical.total_ns,
                "coverage": self.critical.coverage(window_ns),
                "ops_on_path": self.critical.ops.len(),
                "nodes": self.critical.nodes,
                "top_ops": top,
            },
        });
        if let Some(d) = &self.drift {
            doc["drift"] = d.to_json();
        }
        if !self.residuals.is_empty() {
            doc["comm_residuals"] = serde_json::Value::Array(
                self.residuals.iter().map(CommResiduals::to_json).collect(),
            );
        }
        doc
    }
}

fn breakdown_json(b: &crate::timeline::Breakdown) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    for (name, v) in b.entries() {
        map.insert(name.to_string(), serde_json::json!(v));
    }
    serde_json::Value::Object(map)
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = &self.analysis;
        let w = a.window_ns();
        writeln!(
            f,
            "profile: {} lanes, window {:.3} ms, attributed {:.1}%",
            a.lanes.len(),
            w as f64 / 1e6,
            100.0 * a.attributed_fraction()
        )?;
        writeln!(f, "aggregate bubble ratio: {:.3}", a.bubble_ratio())?;
        for (name, v) in a.aggregate.entries() {
            if v > 0 {
                writeln!(
                    f,
                    "  {name:<9} {:>10.3} ms  {:>5.1}%",
                    v as f64 / 1e6,
                    pct(v, a.aggregate.total())
                )?;
            }
        }
        writeln!(f, "per-lane bubble ratios:")?;
        for l in &a.lanes {
            writeln!(
                f,
                "  rank {} track {}: {:.3}  ({} spans)",
                l.pid,
                l.track,
                l.breakdown.bubble_ratio(),
                l.spans
            )?;
        }
        writeln!(
            f,
            "critical path: {:.3} ms over {} ops ({} nodes), coverage {:.1}%",
            self.critical.total_ns as f64 / 1e6,
            self.critical.ops.len(),
            self.critical.nodes,
            100.0 * self.critical.coverage(w)
        )?;
        for o in self.critical.top_ops(TOP_K) {
            writeln!(
                f,
                "  {:<14} rank {} track {}  crit {:>9.3} ms of {:>9.3} ms  [{}]",
                o.name,
                o.pid,
                o.track,
                o.crit_ns as f64 / 1e6,
                o.dur_ns as f64 / 1e6,
                o.kind.label()
            )?;
        }
        if let Some(d) = &self.drift {
            writeln!(
                f,
                "drift vs sim ({} D={} N={}): bubble measured {:.3} sim {:.3} (delta {:+.3})",
                d.scheme, d.d, d.n, d.measured_bubble, d.sim_bubble, d.bubble_delta
            )?;
            for (class, c) in &d.classes {
                writeln!(
                    f,
                    "  {class:<10} drift {:.3}  (measured mean {:.3} ms over {} spans)",
                    c.drift,
                    c.measured_mean_ns / 1e6,
                    c.count
                )?;
            }
        }
        for r in &self.residuals {
            writeln!(
                f,
                "comm residuals vs {} fit: mean {:+.1} us, mean |r| {:.1} us, max |r| {:.1} us over {} sized p2p spans",
                r.link,
                r.mean_ns / 1e3,
                r.mean_abs_ns / 1e3,
                r.max_abs_ns / 1e3,
                r.count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_trace::{SpanEvent, SpanKind};

    fn span(kind: SpanKind, track: u32, start: u64, dur: u64) -> Event {
        Event::Span(SpanEvent {
            kind,
            name: format!("{}@{start}", kind.label()),
            pid: 0,
            track,
            start_ns: start,
            dur_ns: dur,
            stage: Some(track),
            replica: Some(0),
            micro: Some(0),
            bytes: None,
        })
    }

    #[test]
    fn report_json_has_stable_schema() {
        let events = vec![
            span(SpanKind::Forward, 0, 0, 10),
            span(SpanKind::Backward, 0, 10, 20),
            span(SpanKind::Forward, 1, 10, 10),
        ];
        let report = profile(&events, None);
        let doc = report.to_json();
        assert_eq!(doc["schema"], serde_json::json!("chimera-obs/profile/v1"));
        assert_eq!(doc["window_ns"], serde_json::json!(30));
        assert!((doc["attributed_fraction"].as_f64().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(doc["lanes"].as_array().unwrap().len(), 2);
        assert!(doc["critical_path"]["total_ns"].as_u64().unwrap() >= 30);
        assert!(doc.get("drift").is_none());
        // Human rendering never panics and mentions the headline numbers.
        let text = report.to_string();
        assert!(text.contains("bubble ratio"));
        assert!(text.contains("critical path"));
    }
}
