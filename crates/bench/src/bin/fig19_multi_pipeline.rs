//! Figure 19: Chimera with more than two pipelines — a 32-layer GPT-2 with
//! B̂ = 64 on 64 GPU nodes. "1 pipeline" is 1F1B with flushes (= DAPPLE);
//! 2f ∈ {2, 4, 8, 16} pipelines use the §3.6 generalization. Paper shape:
//! with D=32 four pipelines win (bubble/allreduce sweet spot); with coarser
//! D=16 four pipelines lose to two because allreduce overhead grows.

use chimera_bench::{print_table, save_json};
use chimera_core::baselines::dapple;
use chimera_core::chimera::{chimera, ChimeraConfig, ScaleMethod};
use chimera_core::schedule::SyncStrategy;
use chimera_core::sync::place_sync;
use chimera_core::unit_time::UnitCosts;
use chimera_perf::{ClusterSpec, ModelSpec, TrainConfig};
use chimera_sim::simulate;

fn main() {
    let model = ModelSpec::gpt2_32();
    let cluster = ClusterSpec::piz_daint();
    let p = 64u32;
    let b_hat = 64u64;
    let b = 1u32;
    let mut json = Vec::new();
    for d in [16u32, 32] {
        let w = p / d;
        let n = (b_hat / (w as u64 * b as u64)) as u32;
        let mut rows = Vec::new();
        // One pipeline: 1F1B with flushes.
        {
            let sched = place_sync(dapple(d, n), SyncStrategy::EagerOpt, UnitCosts::practical());
            let cost = TrainConfig {
                model,
                cluster,
                d,
                w,
                b,
                stage_replicas: 1,
            }
            .cost_model();
            let rep = simulate(&sched, &cost).expect("simulates");
            rows.push(vec![
                "1".to_string(),
                d.to_string(),
                w.to_string(),
                n.to_string(),
                format!("{:.1}", rep.throughput(b_hat)),
                format!("{:.3}", rep.bubble_ratio),
            ]);
            json.push(serde_json::json!({
                "pipelines": 1, "d": d, "w": w,
                "throughput": rep.throughput(b_hat),
                "bubble": rep.bubble_ratio,
            }));
        }
        let mut f = 1u32;
        while (d / 2) % f == 0 && 2 * f <= d {
            let sched = chimera(&ChimeraConfig {
                d,
                n,
                f,
                scale: ScaleMethod::Direct,
            })
            .expect("valid config");
            let sched = place_sync(sched, SyncStrategy::EagerOpt, UnitCosts::practical());
            let cost = TrainConfig {
                model,
                cluster,
                d,
                w,
                b,
                stage_replicas: 2 * f,
            }
            .cost_model();
            let rep = simulate(&sched, &cost).expect("simulates");
            rows.push(vec![
                format!("{}", 2 * f),
                d.to_string(),
                w.to_string(),
                n.to_string(),
                format!("{:.1}", rep.throughput(b_hat)),
                format!("{:.3}", rep.bubble_ratio),
            ]);
            json.push(serde_json::json!({
                "pipelines": 2 * f, "d": d, "w": w,
                "throughput": rep.throughput(b_hat),
                "bubble": rep.bubble_ratio,
            }));
            f *= 2;
        }
        print_table(
            &format!("Fig. 19: GPT-2-32L, B̂=64, P=64, D={d} (samples/s)"),
            &["pipelines", "D", "W", "N", "samples/s", "bubble"],
            &rows,
        );
    }
    save_json("fig19_multi_pipeline", serde_json::json!(json));
}
