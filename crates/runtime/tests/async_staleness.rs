//! Asynchronous (PipeDream) training on the real runtime: weight stashing
//! keeps forward/backward versions consistent, training still converges,
//! but the result is *not* mini-batch SGD — the staleness Table 2 warns
//! about, executed.

use chimera_core::baselines::pipedream_steady;
use chimera_nn::{ModelConfig, ReferenceTrainer, Stage, SyntheticData};
use chimera_runtime::{train, TrainOptions};

fn opts(iterations: u32) -> TrainOptions {
    TrainOptions {
        micro_batch: 2,
        iterations,
        lr: 0.05,
        momentum: 0.9,
        data_seed: 31,
        ..TrainOptions::default()
    }
}

#[test]
fn pipedream_trains_but_diverges_from_sgd() {
    let cfg = ModelConfig::tiny();
    let d = 4;
    let n = 4;
    let iters = 4; // unrolled inside one schedule
    let sched = pipedream_steady(d, n, iters);
    let o = opts(1);
    let result = train(&sched, cfg, o.clone()).expect("training succeeds");
    let first = result.iteration_losses[0];
    assert!(first.is_finite() && first > 0.0);

    // Sequential mini-batch SGD over the same data.
    let mut reference = ReferenceTrainer::new(
        Stage::build_all(cfg, d),
        SyntheticData::new(cfg, o.data_seed),
        o.micro_batch,
        o.lr,
        o.momentum,
    );
    for it in 0..iters {
        reference.train_iteration(it as u64 * n as u64, n);
    }
    // Asynchronous per-micro updates with stale weights are NOT equivalent
    // to synchronous SGD.
    assert_ne!(
        result.flat_params(),
        reference.flat_params(),
        "PipeDream should exhibit weight staleness"
    );
}

#[test]
fn pipedream_long_run_remains_stable() {
    let cfg = ModelConfig::tiny();
    let d = 2;
    let n = 2;
    let sched = pipedream_steady(d, n, 12);
    let mut o = opts(1);
    o.lr = 0.4; // per-update gradients are scaled by 1/(n·iters)
    let result = train(&sched, cfg, o).expect("training succeeds");
    let l = &result.iteration_losses; // one entry (single unrolled span)
    assert_eq!(l.len(), 1);
    assert!(
        l[0].is_finite() && l[0] > 0.0,
        "async training stayed stable"
    );
}

#[test]
fn pipedream_deterministic_across_runs() {
    let cfg = ModelConfig::tiny();
    let sched = pipedream_steady(4, 4, 3);
    let a = train(&sched, cfg, opts(1)).unwrap();
    let b = train(&sched, cfg, opts(1)).unwrap();
    assert_eq!(a.flat_params(), b.flat_params());
    assert_eq!(a.iteration_losses, b.iteration_losses);
}
