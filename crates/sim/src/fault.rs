//! Fault injection and checkpoint-restart recovery modeling.
//!
//! The paper's evaluation assumes a healthy machine; at the scale Chimera
//! targets (thousands of nodes, multi-day runs) stragglers, degraded links
//! and outright node failures are routine. This module perturbs the
//! simulator's cost model deterministically from a seed ([`FaultPlan`] +
//! [`PerturbedCost`]) and accounts for the cost of surviving crashes via
//! periodic checkpoints ([`RecoveryModel`], [`simulate_faulty`]):
//! detect the failure, restore the last checkpoint, replay the lost work.
//!
//! Everything is a pure function of `(plan.seed, op identity)` — two runs
//! with the same plan produce bit-identical reports, which is what makes
//! fault scenarios usable in regression tests.
//!
//! [`FaultPlan::net_chaos`] mirrors the transport layer's seeded
//! [`chimera_comm::NetChaos`] plans analytically: frame loss, duplication,
//! reordering, slow links, partition windows and socket breaks are mapped
//! onto link bandwidth factors, expected retransmit stalls and one-time
//! outage charges, so a chaos scenario run on the real TCP backend has a
//! simulated counterpart to drift-check against.

use chimera_core::op::{Op, OpKind};
use chimera_core::placement::Placement;
use chimera_core::schedule::Schedule;
use chimera_core::unit_time::{execute_with, validate_span, CostProvider, ExecError};
use chimera_core::{StageId, WorkerId};
use chimera_trace::{Event, SpanEvent, SpanKind};

use crate::cost::SimCostModel;
use crate::engine::SimReport;
use crate::memory;

/// A deterministic, seeded fault scenario for one pipeline group.
///
/// Built with the chainable constructors and consumed by [`PerturbedCost`]
/// (slowdowns, jitter, link degradation) and [`simulate_faulty`] (crashes).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-op jitter hash.
    pub seed: u64,
    /// Per-worker compute slowdown factors (≥ 1 for stragglers).
    slowdowns: Vec<(u32, f64)>,
    /// Per-link `(from, to, factor)` p2p delay multipliers.
    links: Vec<(u32, u32, f64)>,
    /// Fractional compute jitter amplitude: each compute op's cost is
    /// multiplied by a deterministic factor in `[1-a, 1+a)`.
    jitter: f64,
    /// Worker crashes: `(worker, tick)` into the training run.
    crashes: Vec<(u32, u64)>,
    /// Additive per-message p2p delay in seconds for `(from, to)` links —
    /// expected retransmit/reorder stalls, chaos slow-link delays.
    extra_delays: Vec<(u32, u32, f64)>,
    /// One-time link outages in seconds charged to the whole run —
    /// partition windows and socket breaks healed by reconnect.
    outages: Vec<(u32, u32, f64)>,
}

impl FaultPlan {
    /// A healthy plan with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            slowdowns: Vec::new(),
            links: Vec::new(),
            jitter: 0.0,
            crashes: Vec::new(),
            extra_delays: Vec::new(),
            outages: Vec::new(),
        }
    }

    /// Multiply `worker`'s compute cost by `factor` (a straggler for
    /// `factor > 1`).
    pub fn slow_worker(mut self, worker: u32, factor: f64) -> Self {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.slowdowns.push((worker, factor));
        self
    }

    /// Multiply the p2p delay of messages `from → to` by `factor`.
    pub fn degrade_link(mut self, from: u32, to: u32, factor: f64) -> Self {
        assert!(factor > 0.0, "link factor must be positive");
        self.links.push((from, to, factor));
        self
    }

    /// Add deterministic per-op compute jitter of fractional amplitude
    /// `a` (each compute op scaled by a seeded factor in `[1-a, 1+a)`).
    pub fn with_jitter(mut self, a: f64) -> Self {
        assert!((0.0..1.0).contains(&a), "jitter amplitude must be in [0,1)");
        self.jitter = a;
        self
    }

    /// Crash `worker` at absolute tick `at` (ns) into the training run.
    pub fn crash_at(mut self, worker: u32, at: u64) -> Self {
        self.crashes.push((worker, at));
        self
    }

    /// Add `seconds` of fixed delay to every p2p message `from → to`.
    pub fn delay_link(mut self, from: u32, to: u32, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "link delay must be non-negative");
        self.extra_delays.push((from, to, seconds));
        self
    }

    /// Charge a one-time `seconds` outage of the link `from → to` to the
    /// run (a partition window or a socket break healed by reconnect).
    pub fn link_outage(mut self, from: u32, to: u32, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "outage must be non-negative");
        self.outages.push((from, to, seconds));
        self
    }

    /// Mirror a transport-layer [`chimera_comm::NetChaos`] plan
    /// analytically on the link `from → to`, so a chaos scenario measured
    /// on the real TCP backend can be compared against its simulated
    /// counterpart. `rto_s` is the retransmit timeout of the session layer
    /// (`TcpConfig::retransmit_after`). The mapping matches how the
    /// self-healing transport absorbs each fault:
    ///
    /// - **flaky `p`** — every lost frame is retransmitted, so goodput
    ///   shrinks by `1/(1-p)` and each message waits an expected `p·rto`
    ///   for the timer;
    /// - **duplicate `p`** — the second copy burns bandwidth: `1+p`;
    /// - **reorder `p`** — a held frame waits for its successor or the
    ///   timer, an expected extra `p·rto/2`;
    /// - **slow** — fixed added delay;
    /// - **partition `(start, len)`** — every frame in the window is
    ///   dropped and recovered one RTO later: a `len·rto` outage;
    /// - **break** — one reconnect-plus-replay stall of about one RTO.
    pub fn net_chaos(self, from: u32, to: u32, chaos: &chimera_comm::NetChaos, rto_s: f64) -> Self {
        assert!(rto_s > 0.0, "retransmit timeout must be positive");
        let mut plan = self;
        if chaos.flaky > 0.0 {
            assert!(chaos.flaky < 1.0, "a fully lossy link never converges");
            plan = plan
                .degrade_link(from, to, 1.0 / (1.0 - chaos.flaky))
                .delay_link(from, to, chaos.flaky * rto_s);
        }
        if chaos.duplicate > 0.0 {
            plan = plan.degrade_link(from, to, 1.0 + chaos.duplicate);
        }
        if chaos.reorder > 0.0 {
            plan = plan.delay_link(from, to, chaos.reorder * rto_s / 2.0);
        }
        if let Some(d) = chaos.slow {
            plan = plan.delay_link(from, to, d.as_secs_f64());
        }
        if let Some((_, len)) = chaos.partition {
            plan = plan.link_outage(from, to, len as f64 * rto_s);
        }
        if chaos.break_at.is_some() {
            plan = plan.link_outage(from, to, rto_s);
        }
        plan
    }

    /// Combined compute slowdown of `worker`.
    pub fn compute_factor(&self, worker: u32) -> f64 {
        self.slowdowns
            .iter()
            .filter(|&&(w, _)| w == worker)
            .map(|&(_, f)| f)
            .product()
    }

    /// Combined delay factor of the link `from → to`.
    pub fn link_factor(&self, from: u32, to: u32) -> f64 {
        self.links
            .iter()
            .filter(|&&(f, t, _)| f == from && t == to)
            .map(|&(_, _, f)| f)
            .product()
    }

    /// Deterministic jitter multiplier for one compute op on `worker`.
    pub fn jitter_factor(&self, worker: u32, op: &Op) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        let kind = match op.kind {
            OpKind::Forward => 0u64,
            OpKind::Backward { recompute: false } => 1,
            OpKind::Backward { recompute: true } => 2,
            OpKind::AllReduceLaunch => 3,
            OpKind::AllReduceWait => 4,
        };
        let ident = (op.micro.0 as u64) << 32
            | (op.stage.0 as u64) << 16
            | (op.replica.0 as u64) << 8
            | kind;
        let u = unit_hash(self.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ident);
        1.0 + self.jitter * (2.0 * u - 1.0)
    }

    /// Scheduled crashes, sorted by tick.
    pub fn crashes(&self) -> Vec<(u32, u64)> {
        let mut c = self.crashes.clone();
        c.sort_by_key(|&(_, t)| t);
        c
    }

    /// Total additive delay of the link `from → to`, seconds.
    pub fn extra_delay_s(&self, from: u32, to: u32) -> f64 {
        self.extra_delays
            .iter()
            .filter(|&&(f, t, _)| f == from && t == to)
            .map(|&(_, _, s)| s)
            .sum()
    }

    /// Total one-time link-outage seconds charged to the run.
    pub fn outage_s(&self) -> f64 {
        self.outages.iter().map(|&(_, _, s)| s).sum()
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_healthy(&self) -> bool {
        self.slowdowns.is_empty()
            && self.links.is_empty()
            && self.jitter == 0.0
            && self.crashes.is_empty()
            && self.extra_delays.is_empty()
            && self.outages.is_empty()
    }
}

/// splitmix64 finalizer → uniform f64 in `[0, 1)`.
fn unit_hash(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Recovery cost model: how failures are survived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Seconds from crash to detection (heartbeat timeout).
    pub detect_s: f64,
    /// Seconds to restore the last checkpoint on all workers.
    pub restore_s: f64,
    /// Seconds to write one checkpoint (charged per save).
    pub checkpoint_s: f64,
    /// Checkpoint cadence in iterations (0 = only the initial checkpoint).
    pub checkpoint_every: u32,
}

impl RecoveryModel {
    /// Expected overhead seconds per failure: detection, restore, and the
    /// expected half-interval of lost work to replay.
    pub fn expected_failure_overhead_s(&self, iter_time_s: f64) -> f64 {
        let interval = self.checkpoint_every.max(1) as f64 * iter_time_s;
        self.detect_s + self.restore_s + interval / 2.0
    }
}

/// A [`CostProvider`] that perturbs a base [`SimCostModel`] according to a
/// [`FaultPlan`]: per-worker compute slowdowns and jitter, per-link delay
/// degradation. Crashes are handled by [`simulate_faulty`], not here.
pub struct PerturbedCost<'a> {
    base: &'a SimCostModel,
    plan: &'a FaultPlan,
    placement: &'a Placement,
}

impl<'a> PerturbedCost<'a> {
    /// Wrap `base` with the perturbations of `plan`; `placement` maps each
    /// op's `(replica, stage)` to the worker whose slowdown applies.
    pub fn new(base: &'a SimCostModel, plan: &'a FaultPlan, placement: &'a Placement) -> Self {
        PerturbedCost {
            base,
            plan,
            placement,
        }
    }
}

impl CostProvider for PerturbedCost<'_> {
    fn op_cost(&self, op: &Op) -> u64 {
        let base = self.base.op_cost(op);
        let w = self.placement.worker(op.replica, op.stage).0;
        let factor = self.plan.compute_factor(w) * self.plan.jitter_factor(w, op);
        (base as f64 * factor).round() as u64
    }

    fn p2p_delay(&self, from: WorkerId, to: WorkerId, op: &Op) -> u64 {
        let base = self.base.p2p_delay(from, to, op);
        let scaled = base as f64 * self.plan.link_factor(from.0, to.0);
        scaled.round() as u64 + SimCostModel::ticks(self.plan.extra_delay_s(from.0, to.0))
    }

    fn allreduce_duration(&self, stage: StageId) -> u64 {
        self.base.allreduce_duration(stage)
    }

    fn full_stash(&self, op: &Op) -> f64 {
        self.base.full_stash(op)
    }

    fn boundary_stash(&self, op: &Op) -> f64 {
        self.base.boundary_stash(op)
    }
}

/// One crash survived during a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRecord {
    /// Worker that crashed.
    pub worker: u32,
    /// Iteration the crash interrupted.
    pub iteration: u32,
    /// Crash tick (ns into the healthy run timeline).
    pub at_ns: u64,
    /// Work since the last checkpoint that must be replayed (ns).
    pub lost_ns: u64,
    /// Detection latency (ns).
    pub detect_ns: u64,
    /// Checkpoint-restore time (ns).
    pub restore_ns: u64,
}

impl CrashRecord {
    /// Total ns this crash added to the run: detect + restore + replay.
    pub fn overhead_ns(&self) -> u64 {
        self.detect_ns + self.restore_ns + self.lost_ns
    }
}

impl serde::Serialize for CrashRecord {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("CrashRecord", 6)?;
        st.serialize_field("worker", &self.worker)?;
        st.serialize_field("iteration", &self.iteration)?;
        st.serialize_field("at_s", &SimCostModel::seconds(self.at_ns))?;
        st.serialize_field("lost_work_s", &SimCostModel::seconds(self.lost_ns))?;
        st.serialize_field("detect_s", &SimCostModel::seconds(self.detect_ns))?;
        st.serialize_field("restore_s", &SimCostModel::seconds(self.restore_ns))?;
        st.end()
    }
}

/// Fault and recovery accounting for a simulated training run (attached to
/// [`SimReport::recovery`] by [`simulate_faulty`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAccounting {
    /// Iterations in the modeled run.
    pub run_iterations: u32,
    /// Checkpoint cadence in iterations (0 = initial checkpoint only).
    pub checkpoint_every: u32,
    /// Checkpoints written during the run (excluding the initial one).
    pub checkpoints: u32,
    /// Fault-free run time under the perturbed cost model, seconds.
    pub healthy_run_s: f64,
    /// Seconds spent writing checkpoints.
    pub checkpoint_overhead_s: f64,
    /// Seconds of computed-then-discarded work replayed after crashes.
    pub lost_work_s: f64,
    /// Seconds spent detecting failures and restoring checkpoints.
    pub recovery_overhead_s: f64,
    /// One-time link-outage seconds (partition windows, reconnects) from
    /// the plan's mirrored network chaos.
    pub net_outage_s: f64,
    /// Total run time including all overheads, seconds.
    pub run_s: f64,
    /// Survived crashes, in tick order.
    pub crashes: Vec<CrashRecord>,
}

impl RecoveryAccounting {
    /// Amortized per-iteration time including fault overheads, seconds.
    pub fn effective_iter_time_s(&self) -> f64 {
        self.run_s / self.run_iterations.max(1) as f64
    }

    /// Run-time inflation relative to the fault-free run (`≥ 1`).
    pub fn slowdown(&self) -> f64 {
        self.run_s / self.healthy_run_s
    }

    /// Effective training throughput in samples/s given the mini-batch
    /// `b_hat` consumed per iteration.
    pub fn effective_throughput(&self, b_hat: u64) -> f64 {
        b_hat as f64 / self.effective_iter_time_s()
    }

    /// Fault timeline as trace events under process group `pid`: for every
    /// crash a `Fault` instant on the crashed worker's track followed by
    /// `Detect`, `Restore` and `Replay` spans — appended after the healthy
    /// timeline by [`SimReport::to_trace`].
    pub fn trace_events(&self, pid: u32) -> Vec<Event> {
        let mut out = Vec::new();
        let mut shift = 0u64;
        for c in &self.crashes {
            let track = c.worker;
            let at = c.at_ns + shift;
            let span = |kind, name: &str, start: u64, dur: u64| {
                Event::Span(SpanEvent {
                    kind,
                    name: name.to_string(),
                    pid,
                    track,
                    start_ns: start,
                    dur_ns: dur,
                    stage: None,
                    replica: None,
                    micro: None,
                    bytes: None,
                })
            };
            out.push(span(
                SpanKind::Fault,
                &format!("crash w{}", c.worker),
                at,
                0,
            ));
            out.push(span(SpanKind::Detect, "detect", at, c.detect_ns));
            out.push(span(
                SpanKind::Restore,
                "restore checkpoint",
                at + c.detect_ns,
                c.restore_ns,
            ));
            out.push(span(
                SpanKind::Replay,
                &format!("replay {:.3}s", SimCostModel::seconds(c.lost_ns)),
                at + c.detect_ns + c.restore_ns,
                c.lost_ns,
            ));
            shift += c.overhead_ns();
        }
        out
    }
}

impl serde::Serialize for RecoveryAccounting {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("RecoveryAccounting", 11)?;
        st.serialize_field("run_iterations", &self.run_iterations)?;
        st.serialize_field("checkpoint_every", &self.checkpoint_every)?;
        st.serialize_field("checkpoints", &self.checkpoints)?;
        st.serialize_field("healthy_run_s", &self.healthy_run_s)?;
        st.serialize_field("checkpoint_overhead_s", &self.checkpoint_overhead_s)?;
        st.serialize_field("lost_work_s", &self.lost_work_s)?;
        st.serialize_field("recovery_overhead_s", &self.recovery_overhead_s)?;
        st.serialize_field("net_outage_s", &self.net_outage_s)?;
        st.serialize_field("run_s", &self.run_s)?;
        st.serialize_field("effective_iter_time_s", &self.effective_iter_time_s())?;
        st.serialize_field("crashes", &self.crashes)?;
        st.end()
    }
}

/// Simulate `run_iterations` training iterations of `sched` under the
/// perturbations of `plan` and the recovery costs of `recovery`.
///
/// The schedule is executed once under [`PerturbedCost`] to obtain the
/// per-iteration time (stragglers, jitter and degraded links shift the
/// critical path organically); crashes and checkpoints are then accounted
/// analytically on top: every crash costs detection + restore + replay of
/// all work since the last checkpoint. The returned report is the perturbed
/// single-iteration report with [`SimReport::recovery`] populated.
///
/// Deterministic: identical inputs produce bit-identical reports.
pub fn simulate_faulty(
    sched: &Schedule,
    cost: &SimCostModel,
    plan: &FaultPlan,
    recovery: &RecoveryModel,
    run_iterations: u32,
) -> Result<SimReport, ExecError> {
    // Execute under the perturbed provider; memory footprints are unaffected
    // by timing faults, so byte accounting stays on the base model.
    validate_span(sched, 1)?;
    let perturbed = PerturbedCost::new(cost, plan, &sched.placement);
    let timeline = execute_with(sched, &perturbed)?;
    let span_s = SimCostModel::seconds(timeline.makespan);
    let mut rep = SimReport {
        span_s,
        iter_time_s: span_s,
        bubble_ratio: timeline.bubble_ratio(),
        busy_s: timeline
            .busy
            .iter()
            .map(|&b| SimCostModel::seconds(b))
            .collect(),
        peak_act_bytes: timeline
            .peak_activations
            .iter()
            .map(|&a| a.round() as u64)
            .collect(),
        weight_bytes: memory::weights_bytes(sched, cost),
        peak_mem_bytes: memory::peak_memory_bytes(sched, cost, &timeline),
        timeline,
        recovery: None,
    };

    let iter_ns = rep.timeline.makespan.max(1);
    let healthy_ns = iter_ns * run_iterations as u64;
    let every = recovery.checkpoint_every;
    let checkpoints = run_iterations.checked_div(every).unwrap_or(0);
    let ckpt_overhead_ns = checkpoints as u64 * SimCostModel::ticks(recovery.checkpoint_s);

    let detect_ns = SimCostModel::ticks(recovery.detect_s);
    let restore_ns = SimCostModel::ticks(recovery.restore_s);
    let mut crashes = Vec::new();
    for (worker, at) in plan.crashes() {
        // Clamp into the run; a crash scheduled past the end never fires.
        if at >= healthy_ns {
            continue;
        }
        let iteration = (at / iter_ns) as u32;
        let last_ckpt_iter = iteration.checked_div(every).map_or(0, |q| q * every);
        let lost_ns = at - last_ckpt_iter as u64 * iter_ns;
        crashes.push(CrashRecord {
            worker,
            iteration,
            at_ns: at,
            lost_ns,
            detect_ns,
            restore_ns,
        });
    }

    let lost_total: u64 = crashes.iter().map(|c| c.lost_ns).sum();
    let recover_total: u64 = crashes.iter().map(|c| c.detect_ns + c.restore_ns).sum();
    let outage_ns = SimCostModel::ticks(plan.outage_s());
    let run_ns = healthy_ns + ckpt_overhead_ns + lost_total + recover_total + outage_ns;
    rep.recovery = Some(RecoveryAccounting {
        run_iterations,
        checkpoint_every: every,
        checkpoints,
        healthy_run_s: SimCostModel::seconds(healthy_ns),
        checkpoint_overhead_s: SimCostModel::seconds(ckpt_overhead_ns),
        lost_work_s: SimCostModel::seconds(lost_total),
        recovery_overhead_s: SimCostModel::seconds(recover_total),
        net_outage_s: SimCostModel::seconds(outage_ns),
        run_s: SimCostModel::seconds(run_ns),
        crashes,
    });
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::AllReduceAlgo;
    use crate::cost::StageCosts;
    use crate::engine::simulate;
    use crate::network::{NetworkModel, Topology};
    use chimera_core::chimera::{chimera, ChimeraConfig};
    use chimera_core::ids::{MicroId, ReplicaId};

    fn cost(d: u32) -> SimCostModel {
        SimCostModel {
            stages: vec![
                StageCosts {
                    fwd_s: 10e-3,
                    bwd_s: 20e-3,
                    recompute_s: 10e-3,
                    boundary_bytes: 4 << 20,
                    act_bytes: 64 << 20,
                    param_bytes: 80 << 20,
                    grad_opt_bytes: 160 << 20,
                };
                d as usize
            ],
            network: NetworkModel::cray_aries(),
            topology: Topology::one_per_node(d),
            allreduce_participants: 16,
            allreduce_algo: AllReduceAlgo::Rabenseifner,
            allreduce_beta_factor: 1.0,
            launch_overhead_s: 0.2e-3,
            half_chunk_penalty: 1.15,
            comm_compute_interference: 0.0,
            p2p_host_overhead_s: 0.0,
            p2p_host_s_per_byte: 0.0,
            grad_compression: 1.0,
        }
    }

    fn recovery(every: u32) -> RecoveryModel {
        RecoveryModel {
            detect_s: 0.5,
            restore_s: 2.0,
            checkpoint_s: 0.25,
            checkpoint_every: every,
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let d = 4;
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let c = cost(d);
        let plan = FaultPlan::new(7)
            .with_jitter(0.2)
            .slow_worker(1, 1.5)
            .crash_at(2, 300_000_000);
        let a = simulate_faulty(&sched, &c, &plan, &recovery(2), 16).unwrap();
        let b = simulate_faulty(&sched, &c, &plan, &recovery(2), 16).unwrap();
        assert_eq!(a.span_s.to_bits(), b.span_s.to_bits());
        let (ra, rb) = (a.recovery.unwrap(), b.recovery.unwrap());
        assert_eq!(ra, rb);
        assert_eq!(ra.run_s.to_bits(), rb.run_s.to_bits());
    }

    #[test]
    fn different_seed_changes_jittered_costs() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let p7 = FaultPlan::new(7).with_jitter(0.2);
        let p8 = FaultPlan::new(8).with_jitter(0.2);
        let a = PerturbedCost::new(&c, &p7, &sched.placement);
        let b = PerturbedCost::new(&c, &p8, &sched.placement);
        let op = Op::forward(MicroId(1), StageId(2), ReplicaId(0));
        assert_ne!(a.op_cost(&op), b.op_cost(&op));
    }

    #[test]
    fn straggler_stretches_the_span() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let healthy = simulate(&sched, &c).unwrap();
        let plan = FaultPlan::new(0).slow_worker(0, 2.0);
        let slow = simulate_faulty(&sched, &c, &plan, &recovery(0), 1).unwrap();
        assert!(
            slow.span_s > healthy.span_s,
            "straggler {} vs healthy {}",
            slow.span_s,
            healthy.span_s
        );
        // The straggler's own busy time doubled exactly.
        assert!((slow.busy_s[0] - 2.0 * healthy.busy_s[0]).abs() < 1e-9);
    }

    #[test]
    fn degraded_link_inflates_p2p() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let plan = FaultPlan::new(0).degrade_link(0, 1, 10.0);
        let p = PerturbedCost::new(&c, &plan, &sched.placement);
        let op = Op::forward(MicroId(0), StageId(1), ReplicaId(0));
        let base = c.p2p_delay(WorkerId(0), WorkerId(1), &op);
        assert_eq!(p.p2p_delay(WorkerId(0), WorkerId(1), &op), 10 * base);
        // Other direction untouched.
        let bop = Op::backward(MicroId(0), StageId(0), ReplicaId(0));
        assert_eq!(
            p.p2p_delay(WorkerId(1), WorkerId(0), &bop),
            c.p2p_delay(WorkerId(1), WorkerId(0), &bop)
        );
    }

    #[test]
    fn crash_accounting_matches_the_cadence() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let healthy = simulate(&sched, &c).unwrap();
        let iter_ns = healthy.timeline.makespan;
        // Crash in the middle of iteration 5 with checkpoints every 2
        // iterations: the last checkpoint is at iteration 4.
        let at = 5 * iter_ns + iter_ns / 2;
        let plan = FaultPlan::new(0).crash_at(1, at);
        let rec = recovery(2);
        let rep = simulate_faulty(&sched, &c, &plan, &rec, 8).unwrap();
        let acc = rep.recovery.unwrap();
        assert_eq!(acc.crashes.len(), 1);
        let crash = &acc.crashes[0];
        assert_eq!(crash.worker, 1);
        assert_eq!(crash.iteration, 5);
        assert_eq!(crash.lost_ns, iter_ns + iter_ns / 2);
        assert_eq!(acc.checkpoints, 4);
        let expected_run = SimCostModel::seconds(
            8 * iter_ns + 4 * SimCostModel::ticks(rec.checkpoint_s) + crash.overhead_ns(),
        );
        assert!((acc.run_s - expected_run).abs() < 1e-12);
        assert!(acc.slowdown() > 1.0);
        assert!(acc.effective_throughput(512) < healthy.throughput(512));
    }

    #[test]
    fn denser_checkpoints_trade_lost_work_for_overhead() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let iter_ns = simulate(&sched, &c).unwrap().timeline.makespan;
        let plan = FaultPlan::new(0).crash_at(0, 7 * iter_ns + 1);
        let dense = simulate_faulty(&sched, &c, &plan, &recovery(1), 8)
            .unwrap()
            .recovery
            .unwrap();
        let sparse = simulate_faulty(&sched, &c, &plan, &recovery(4), 8)
            .unwrap()
            .recovery
            .unwrap();
        assert!(dense.lost_work_s < sparse.lost_work_s);
        assert!(dense.checkpoint_overhead_s > sparse.checkpoint_overhead_s);
    }

    /// The transport chaos mirror: bandwidth inflation from loss and
    /// duplication, expected RTO stalls from loss/reorder/slow links, and
    /// one-time outage charges for partition windows and socket breaks —
    /// only on the chaotic link, and visible in the run accounting.
    #[test]
    fn net_chaos_mirror_inflates_links_and_accounts_outages() {
        use chimera_comm::NetChaos;
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let chaos = NetChaos::new(7)
            .with_flaky(0.2)
            .with_duplicate(0.1)
            .with_reorder(0.1)
            .with_slow(std::time::Duration::from_millis(1))
            .with_partition(30, 10)
            .with_break_at(50);
        let rto = 0.1;
        let plan = FaultPlan::new(7).net_chaos(0, 1, &chaos, rto);
        assert!(!plan.is_healthy());
        // Bandwidth inflation: retransmits 1/(1-p), duplicates 1+p.
        assert!((plan.link_factor(0, 1) - 1.1 / 0.8).abs() < 1e-12);
        // Expected stalls: flaky p·rto, reorder p·rto/2, slow d.
        let want = 0.2 * rto + 0.1 * rto / 2.0 + 1e-3;
        assert!((plan.extra_delay_s(0, 1) - want).abs() < 1e-12);
        // The reverse link is untouched.
        assert_eq!(plan.link_factor(1, 0), 1.0);
        assert_eq!(plan.extra_delay_s(1, 0), 0.0);
        // Outages: the partition window plus one reconnect.
        assert!((plan.outage_s() - 11.0 * rto).abs() < 1e-12);
        // Mirrored chaos stretches both the iteration and the run.
        let healthy = simulate(&sched, &c).unwrap();
        let rep = simulate_faulty(&sched, &c, &plan, &recovery(2), 8).unwrap();
        assert!(
            rep.span_s > healthy.span_s,
            "chaotic link off critical path"
        );
        let acc = rep.recovery.unwrap();
        assert!((acc.net_outage_s - plan.outage_s()).abs() < 1e-9);
        assert!(acc.slowdown() > 1.0);
    }

    #[test]
    fn crash_past_the_run_never_fires() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let plan = FaultPlan::new(0).crash_at(3, u64::MAX);
        let acc = simulate_faulty(&sched, &c, &plan, &recovery(1), 2)
            .unwrap()
            .recovery
            .unwrap();
        assert!(acc.crashes.is_empty());
        assert_eq!(acc.lost_work_s, 0.0);
    }

    #[test]
    fn mtbf_throughput_is_monotonic_and_below_fault_free() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let rep = simulate(&sched, &c).unwrap();
        let rec = recovery(4);
        let t1 = rep.effective_throughput_under_mtbf(512, 3600.0, &rec);
        let t2 = rep.effective_throughput_under_mtbf(512, 36_000.0, &rec);
        let t3 = rep.effective_throughput_under_mtbf(512, 360_000.0, &rec);
        assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
        assert!(t3 < rep.throughput(512));
    }

    #[test]
    fn recovery_spans_appear_in_the_trace() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let iter_ns = simulate(&sched, &c).unwrap().timeline.makespan;
        let plan = FaultPlan::new(0)
            .crash_at(2, iter_ns / 2)
            .crash_at(0, 3 * iter_ns);
        let rep = simulate_faulty(&sched, &c, &plan, &recovery(1), 4).unwrap();
        let events = rep.to_trace();
        for kind in [
            SpanKind::Fault,
            SpanKind::Detect,
            SpanKind::Restore,
            SpanKind::Replay,
        ] {
            assert_eq!(
                events
                    .iter()
                    .filter(|e| matches!(e, Event::Span(s) if s.kind == kind))
                    .count(),
                2,
                "expected two {kind:?} spans"
            );
        }
        // Fault instants sit on the crashed workers' tracks, and the Chrome
        // export carries them through.
        let faults: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) if s.kind == SpanKind::Fault => Some(s.track),
                _ => None,
            })
            .collect();
        assert_eq!(faults, vec![2, 0]);
        let doc = chimera_trace::chrome_trace_json(&events, &[(0, "faulty")]);
        let cats: Vec<&str> = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e["cat"].as_str())
            .collect();
        for cat in ["fault", "detect", "restore", "replay"] {
            assert!(cats.contains(&cat), "no {cat} events in Chrome export");
        }
    }

    #[test]
    fn report_serializes_recovery_section() {
        let d = 4;
        let c = cost(d);
        let sched = chimera(&ChimeraConfig::new(d, d)).unwrap();
        let iter_ns = simulate(&sched, &c).unwrap().timeline.makespan;
        let plan = FaultPlan::new(0).crash_at(1, 2 * iter_ns + 5);
        let rep = simulate_faulty(&sched, &c, &plan, &recovery(2), 4).unwrap();
        let v = serde_json::to_value(&rep).unwrap();
        assert_eq!(v["recovery"]["run_iterations"].as_u64().unwrap(), 4);
        assert_eq!(v["recovery"]["crashes"].as_array().unwrap().len(), 1);
        assert_eq!(v["recovery"]["crashes"][0]["worker"].as_u64().unwrap(), 1);
        assert!(v["recovery"]["effective_iter_time_s"].as_f64().unwrap() > 0.0);
        // Healthy reports keep the field null.
        let healthy = serde_json::to_value(simulate(&sched, &c).unwrap()).unwrap();
        assert!(healthy["recovery"].is_null());
    }
}
