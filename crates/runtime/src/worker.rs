//! One pipeline worker: a thread executing its schedule ops on real model
//! stages.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use chimera_core::op::{Chunk, Op, OpKind};
use chimera_core::placement::Placement;
use chimera_core::{StageId, WorkerId};
use chimera_collectives::KeyedMember;
use chimera_nn::{LrSchedule, MicroStash, Optimizer, OptimizerKind, Stage, SyntheticData};
use chimera_tensor::Tensor;
use chimera_trace::{now_ns, Counter, Event, MetricsRegistry, SpanEvent, SpanKind, TraceSink};

/// A boundary message between pipeline workers.
pub struct Msg {
    /// Producing replica.
    pub replica: u32,
    /// Producing stage.
    pub stage: u32,
    /// Global micro-batch id.
    pub micro: u64,
    /// `true` for a backward (gradient) message.
    pub grad: bool,
    /// The tensor.
    pub tensor: Tensor,
}

type InboxKey = (bool, u32, u32, u64);
type StageKey = (u32, u32); // (replica, stage)

/// Training hyper-parameters shared by every worker.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Sequences per micro-batch (`B`).
    pub micro_batch: usize,
    /// Training iterations to run.
    pub iterations: u32,
    /// Learning rate (base of a constant schedule unless overridden).
    pub lr: f32,
    /// SGD momentum (ignored by [`OptimizerKind::Adam`]).
    pub momentum: f32,
    /// Data-stream seed.
    pub data_seed: u64,
    /// Update rule; `None` means momentum SGD from the fields above.
    pub optimizer: Option<OptimizerKind>,
    /// Learning-rate schedule; `None` means constant `lr`.
    pub lr_schedule: Option<LrSchedule>,
    /// Trace sink receiving wall-clock spans (forward/backward/p2p/allreduce)
    /// from every worker thread. `None` — the default — disables all
    /// instrumentation: no clock reads, no event construction.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            micro_batch: 1,
            iterations: 1,
            lr: 0.05,
            momentum: 0.9,
            data_seed: 1,
            optimizer: None,
            lr_schedule: None,
            trace: None,
        }
    }
}

impl TrainOptions {
    /// The effective optimizer kind.
    pub fn optimizer_kind(&self) -> OptimizerKind {
        self.optimizer.unwrap_or(OptimizerKind::Sgd {
            momentum: self.momentum,
        })
    }

    /// The effective learning-rate schedule.
    pub fn schedule(&self) -> LrSchedule {
        self.lr_schedule.unwrap_or(LrSchedule::Constant(self.lr))
    }
}

/// Per-worker tracing state; only built when [`TrainOptions::trace`] holds a
/// sink, so a disabled trace costs one `Option` check per op.
struct Tracer {
    sink: Arc<dyn TraceSink>,
    /// Global track id: `group · D + local worker id`.
    track: u32,
    p2p_bytes: Arc<Counter>,
    p2p_wait_ns: Arc<Counter>,
    allreduce_launches: Arc<Counter>,
    /// Wall-clock compute nanoseconds per held stage.
    stage_compute_ns: HashMap<u32, Arc<Counter>>,
}

impl Tracer {
    #[allow(clippy::too_many_arguments)]
    fn span(
        &self,
        kind: SpanKind,
        name: String,
        start_ns: u64,
        end_ns: u64,
        stage: Option<u32>,
        replica: Option<u32>,
        micro: Option<u64>,
    ) {
        self.sink.record(Event::Span(SpanEvent {
            kind,
            name,
            pid: 0,
            track: self.track,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            stage,
            replica,
            micro,
        }));
    }
}

/// What a worker thread returns.
pub struct WorkerResult {
    /// `(global_micro, loss)` for every micro-batch whose head this worker
    /// executed.
    pub losses: Vec<(u64, f32)>,
    /// Final stage replicas `(replica, stage, Stage)`.
    pub stages: Vec<(u32, u32, Stage)>,
}

/// One worker's runtime state.
pub struct Worker {
    /// This worker's id within its pipeline group.
    pub id: WorkerId,
    d: u32,
    /// Data-parallel group this worker belongs to (`0..W`, §3.3).
    group: u32,
    /// Total number of replicated pipeline groups `W`.
    w_total: u32,
    n_per_iter: u32,
    ops: Vec<Op>,
    has_sync_ops: bool,
    placement: Placement,
    stages: HashMap<StageKey, Stage>,
    optimizers: HashMap<StageKey, Optimizer>,
    sync: HashMap<u32, KeyedMember>, // by stage
    rx: Receiver<Msg>,
    tx: Vec<Sender<Msg>>,
    data: SyntheticData,
    opts: TrainOptions,
    inbox: HashMap<InboxKey, Tensor>,
    stashes: HashMap<(u32, u32, u64), MicroStash>,
    grads: HashMap<StageKey, Vec<(u64, Vec<f32>)>>,
    recomputing: Vec<StageKey>,
    losses: Vec<(u64, f32)>,
    /// Asynchronous schedules (PipeDream) update weights mid-stream; to keep
    /// forward/backward weight versions consistent, each in-flight
    /// micro-batch stashes the parameter version its forward used
    /// (PipeDream's *weight stashing*, up to `D - s` versions at stage `s`).
    stash_weights: bool,
    weight_versions: HashMap<(u32, u32, u64), Vec<f32>>,
    tracer: Option<Tracer>,
}

impl Worker {
    /// Assemble a worker.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: WorkerId,
        d: u32,
        group: u32,
        w_total: u32,
        n_per_iter: u32,
        ops: Vec<Op>,
        placement: Placement,
        stages: Vec<(u32, u32, Stage)>,
        sync: HashMap<u32, KeyedMember>,
        rx: Receiver<Msg>,
        tx: Vec<Sender<Msg>>,
        data: SyntheticData,
        opts: TrainOptions,
        flushes: bool,
    ) -> Self {
        let has_sync_ops = ops.iter().any(|o| o.kind == OpKind::AllReduceWait);
        let stash_weights = !flushes;
        let recomputing: Vec<StageKey> = {
            let mut v: Vec<StageKey> = ops
                .iter()
                .filter(|o| o.recomputes())
                .map(|o| (o.replica.0, o.stage.0))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut stage_map = HashMap::new();
        let mut optimizers = HashMap::new();
        for (r, s, stage) in stages {
            optimizers.insert(
                (r, s),
                Optimizer::new(opts.optimizer_kind(), stage.num_params()),
            );
            stage_map.insert((r, s), stage);
        }
        let tracer = opts.trace.clone().map(|sink| {
            let reg = MetricsRegistry::global();
            let stage_compute_ns = stage_map
                .keys()
                .map(|&(_, s)| (s, reg.counter(&format!("runtime.stage.{s}.compute_ns"))))
                .collect();
            Tracer {
                sink,
                track: group * d + id.0,
                p2p_bytes: reg.counter("runtime.p2p.bytes"),
                p2p_wait_ns: reg.counter("runtime.p2p.wait_ns"),
                allreduce_launches: reg.counter("runtime.allreduce.launches"),
                stage_compute_ns,
            }
        });
        Worker {
            id,
            d,
            group,
            w_total,
            n_per_iter,
            ops,
            has_sync_ops,
            placement,
            stages: stage_map,
            optimizers,
            sync,
            rx,
            tx,
            data,
            opts,
            inbox: HashMap::new(),
            stashes: HashMap::new(),
            grads: HashMap::new(),
            recomputing,
            losses: Vec::new(),
            stash_weights,
            weight_versions: HashMap::new(),
            tracer,
        }
    }

    /// Run all iterations; consumes the worker.
    ///
    /// Global micro-batch ids interleave data-parallel groups group-major:
    /// iteration `i` consumes micros `[i·N·W, (i+1)·N·W)`, with this group's
    /// share starting at `i·N·W + group·N` — the same ordering the
    /// sequential reference uses, so keyed gradient reduction stays
    /// bit-exact across `W`.
    pub fn run(mut self) -> WorkerResult {
        let ops = std::mem::take(&mut self.ops);
        for iter in 0..self.opts.iterations {
            let offset = iter as u64 * self.n_per_iter as u64 * self.w_total as u64
                + self.group as u64 * self.n_per_iter as u64;
            for op in &ops {
                self.exec(op, offset);
            }
            if !self.has_sync_ops {
                // Implicit post-hoc synchronization: launch everything, then
                // wait — partner workers may hold the same stages in a
                // different order, so blocking per-stage reduces could
                // deadlock.
                let t0 = self.tracer.as_ref().map(|_| now_ns());
                let mut held: Vec<StageKey> = self.stages.keys().copied().collect();
                held.sort_unstable();
                for &(r, s) in &held {
                    let contribution = self.grads.remove(&(r, s)).unwrap_or_default();
                    self.sync[&s].deposit(contribution);
                }
                for &(r, s) in &held {
                    let summed = self.sync[&s].fetch();
                    self.apply_update(r, s, &summed);
                }
                if let (Some(tr), Some(start)) = (&self.tracer, t0) {
                    tr.allreduce_launches.add(held.len() as u64);
                    tr.span(
                        SpanKind::AllReduce,
                        format!("posthoc-sync i{iter}"),
                        start,
                        now_ns(),
                        None,
                        None,
                        None,
                    );
                }
            }
        }
        let mut stages: Vec<(u32, u32, Stage)> = self
            .stages
            .into_iter()
            .map(|((r, s), st)| (r, s, st))
            .collect();
        stages.sort_by_key(|&(r, s, _)| (r, s));
        WorkerResult {
            losses: self.losses,
            stages,
        }
    }

    fn exec(&mut self, op: &Op, offset: u64) {
        if self.tracer.is_none() {
            return self.exec_op(op, offset);
        }
        let start = now_ns();
        self.exec_op(op, offset);
        let end = now_ns();
        let tr = self.tracer.as_ref().expect("tracer checked above");
        let kind = match op.kind {
            OpKind::Forward => SpanKind::Forward,
            OpKind::Backward { recompute: false } => SpanKind::Backward,
            OpKind::Backward { recompute: true } => SpanKind::Recompute,
            OpKind::AllReduceLaunch => SpanKind::AllReduceLaunch,
            OpKind::AllReduceWait => SpanKind::AllReduce,
        };
        if op.is_compute() {
            if let Some(c) = tr.stage_compute_ns.get(&op.stage.0) {
                c.add(end.saturating_sub(start));
            }
        }
        if op.kind == OpKind::AllReduceLaunch {
            tr.allreduce_launches.inc();
        }
        tr.span(
            kind,
            op.to_string(),
            start,
            end,
            Some(op.stage.0),
            Some(op.replica.0),
            op.is_compute().then(|| op.micro.0 as u64 + offset),
        );
    }

    fn exec_op(&mut self, op: &Op, offset: u64) {
        assert_eq!(op.chunk, Chunk::Full, "runtime supports full-micro chunks");
        match op.kind {
            OpKind::Forward => self.forward(op, offset),
            OpKind::Backward { .. } => self.backward(op, offset),
            OpKind::AllReduceLaunch => {
                let contribution = self
                    .grads
                    .remove(&(op.replica.0, op.stage.0))
                    .unwrap_or_default();
                self.sync[&op.stage.0].deposit(contribution);
            }
            OpKind::AllReduceWait => {
                let summed = self.sync[&op.stage.0].fetch();
                self.apply_update(op.replica.0, op.stage.0, &summed);
            }
        }
    }

    fn forward(&mut self, op: &Op, offset: u64) {
        let (r, s) = (op.replica.0, op.stage.0);
        let g = op.micro.0 as u64 + offset;
        let last = s + 1 == self.d;
        let (tokens, targets) = if s == 0 || last {
            self.data.batch(g, self.opts.micro_batch)
        } else {
            (Vec::new(), Vec::new())
        };
        let x = if s == 0 {
            None
        } else {
            Some(self.recv(false, r, s - 1, g))
        };
        let stage = &self.stages[&(r, s)];
        let (out, mut stash) = stage.forward(
            x,
            (s == 0).then_some(tokens.as_slice()),
            last.then_some(targets.as_slice()),
        );
        if self.recomputing.contains(&(r, s)) {
            stash.drop_to_boundary();
        }
        self.stashes.insert((r, s, g), stash);
        if self.stash_weights {
            self.weight_versions
                .insert((r, s, g), self.stages[&(r, s)].params());
        }
        if let Some(act) = out.activation {
            let to = self.placement.worker(op.replica, StageId(s + 1));
            self.send(to, Msg {
                replica: r,
                stage: s,
                micro: g,
                grad: false,
                tensor: act,
            });
        }
        if let Some(loss) = out.loss {
            self.losses.push((g, loss));
        }
    }

    fn backward(&mut self, op: &Op, offset: u64) {
        let (r, s) = (op.replica.0, op.stage.0);
        let g = op.micro.0 as u64 + offset;
        let last = s + 1 == self.d;
        let dy = if last {
            None
        } else {
            Some(self.recv(true, r, s + 1, g))
        };
        let mut stash = self
            .stashes
            .remove(&(r, s, g))
            .expect("backward without stashed forward");
        // PipeDream weight stashing: the backward must use the same weight
        // version as this micro-batch's forward did.
        let restore = self.weight_versions.remove(&(r, s, g)).map(|version| {
            let stage = self.stages.get_mut(&(r, s)).expect("stage held");
            let current = stage.params();
            stage.set_params(&version);
            current
        });
        let stage = &self.stages[&(r, s)];
        if !stash.is_full() {
            let (_, targets) = self.data.batch(g, self.opts.micro_batch);
            stage.recompute(&mut stash, last.then_some(targets.as_slice()));
        }
        let scale = 1.0 / (self.n_per_iter * self.w_total) as f32;
        let (dx, grad) = stage.backward(&stash, dy, scale);
        if let Some(current) = restore {
            self.stages
                .get_mut(&(r, s))
                .expect("stage held")
                .set_params(&current);
        }
        self.grads.entry((r, s)).or_default().push((g, grad));
        if let Some(dx) = dx {
            let to = self.placement.worker(op.replica, StageId(s - 1));
            self.send(to, Msg {
                replica: r,
                stage: s,
                micro: g,
                grad: true,
                tensor: dx,
            });
        }
    }

    fn apply_update(&mut self, r: u32, s: u32, summed: &[f32]) {
        if summed.is_empty() {
            return;
        }
        let stage = self.stages.get_mut(&(r, s)).expect("stage held");
        let opt = self.optimizers.get_mut(&(r, s)).expect("optimizer held");
        let lr = self.opts.schedule().at(opt.steps());
        let mut params = stage.params();
        opt.step(&mut params, summed, lr);
        stage.set_params(&params);
    }

    fn send(&self, to: WorkerId, msg: Msg) {
        // p2p stays within the pipeline group (§3.3): `tx` is indexed by
        // global worker id = group · D + local id.
        let global = self.group as usize * self.d as usize + to.idx();
        self.tx[global].send(msg).expect("peer worker alive");
    }

    fn recv(&mut self, grad: bool, replica: u32, stage: u32, micro: u64) -> Tensor {
        let key = (grad, replica, stage, micro);
        if let Some(t) = self.inbox.remove(&key) {
            // Already delivered — no wait, no span.
            return t;
        }
        let start = self.tracer.as_ref().map(|_| now_ns());
        let tensor = loop {
            let msg = self.rx.recv().expect("peer worker alive");
            if let Some(tr) = &self.tracer {
                // Each message is pulled off its channel exactly once, so
                // this counts total p2p traffic, not just this key's bytes.
                tr.p2p_bytes.add(msg.tensor.len() as u64 * 4);
            }
            self.inbox
                .insert((msg.grad, msg.replica, msg.stage, msg.micro), msg.tensor);
            if let Some(t) = self.inbox.remove(&key) {
                break t;
            }
        };
        if let (Some(tr), Some(start)) = (&self.tracer, start) {
            let end = now_ns();
            tr.p2p_wait_ns.add(end.saturating_sub(start));
            let dir = if grad { "grad" } else { "act" };
            tr.span(
                SpanKind::P2p,
                format!("recv {dir} m{micro}@s{stage}"),
                start,
                end,
                Some(stage),
                Some(replica),
                Some(micro),
            );
        }
        tensor
    }
}
